package coherence

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/sim"
)

// driveMix runs a deterministic multi-core sharing mix and returns the
// per-access values observed plus the final memory-image hash.
func driveMix(t *testing.T, s *System) ([]uint64, string) {
	t.Helper()
	rng := sim.NewRNG(0xD1CE)
	var values []uint64
	for i := 0; i < 600; i++ {
		port := rng.Intn(len(s.L1s))
		addr := cache.Addr(rng.Uint64n(64) * 64)
		write := rng.Bool(0.3)
		r := s.AccessSync(port, addr, write, false, uint64(i)<<8|uint64(port))
		values = append(values, r.Value)
	}
	quiesceAndCheck(t, s)
	return values, s.MemImageHash()
}

// Timing faults must move cycles, never values: the same access sequence
// against a heavily perturbed system yields identical data and an
// identical final memory image.
func TestInjectorPreservesArchitecturalValues(t *testing.T) {
	for _, p := range []Policy{MESI, SMESI, SwiftDir} {
		t.Run(p.Name(), func(t *testing.T) {
			base := newTestSystem(t, p, 4)
			baseVals, baseHash := driveMix(t, base)

			plan := fault.Plan{
				Name: "stress", Seed: 11,
				LinkSpikeProb: 0.2, LinkSpikeMax: 30,
				BankBusyProb: 0.15, BankBusyMax: 12,
				DRAMStallProb: 0.25, DRAMStallMax: 90,
				LinkStorms: []fault.Window{{Start: 500, End: 4_000}},
			}
			cfg := testConfig(p, 4)
			cfg.Faults = fault.MustNewInjector(plan)
			faulty, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			faultyVals, faultyHash := driveMix(t, faulty)

			for i := range baseVals {
				if baseVals[i] != faultyVals[i] {
					t.Fatalf("access %d: value %#x with faults, %#x without", i, faultyVals[i], baseVals[i])
				}
			}
			if baseHash != faultyHash {
				t.Fatalf("memory image diverged: %s vs %s", faultyHash, baseHash)
			}
			if cfg.Faults.Stats.LinkFaults == 0 && cfg.Faults.Stats.BankFaults == 0 && cfg.Faults.Stats.DRAMFaults == 0 {
				t.Fatal("injector never fired; the test perturbed nothing")
			}
			if base.Eng.Now() == faulty.Eng.Now() {
				t.Log("note: fault plan did not move the final cycle (unusual but legal)")
			}
		})
	}
}

// MemImageHash must not depend on which never-written blocks happen to be
// cache-resident, only on written values.
func TestMemImageHashIgnoresCleanResidency(t *testing.T) {
	a := newTestSystem(t, MESI, 2)
	b := newTestSystem(t, MESI, 2)
	for _, s := range []*System{a, b} {
		s.AccessSync(0, blockA, true, false, 0x1111)
	}
	// System b additionally reads (never writes) a disjoint region,
	// changing its cache residency but not any architectural value.
	for i := 0; i < 32; i++ {
		b.AccessSync(1, cache.Addr(0x80000+i*64), false, false, 0)
	}
	a.Quiesce()
	b.Quiesce()
	if ah, bh := a.MemImageHash(), b.MemImageHash(); ah != bh {
		t.Fatalf("clean residency changed the hash: %s vs %s", ah, bh)
	}
}

func TestDumpStateSections(t *testing.T) {
	s := newTestSystem(t, MESI, 2)
	// Put a transaction in flight so the dump has transient state: run
	// until the directory is busy with the miss.
	s.Submit(0, Access{Addr: blockA, Write: true, Value: 7})
	for s.Eng.Step() && !s.BankBusy(blockA) {
	}
	dump := s.DumpState()
	for _, frag := range []string{
		"=== system state at cycle",
		"-- pending events",
		"-- directory transient transactions --",
		"-- L1 MSHR / writeback state --",
		"delivered messages",
		"GETX",
	} {
		if !strings.Contains(dump, frag) {
			t.Errorf("dump missing %q:\n%s", frag, dump)
		}
	}
	if !strings.Contains(dump, "MSHR") {
		t.Errorf("dump missing MSHR line:\n%s", dump)
	}
	s.Quiesce()
}

// A protocol-illegal delivery must surface as a typed *fault.Violation
// carrying cycle, component, address, and a non-empty dump.
func TestProtocolPanicIsTypedViolation(t *testing.T) {
	s := newTestSystem(t, MESI, 2)
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		// UpgradeAck with no outstanding MSHR: impossible under the
		// protocol, exactly what the containment layer must catch.
		s.L1s[0].Receive(Msg{Kind: MsgUpgradeAck, Addr: blockA, Src: DirID})
	}()
	v := fault.AsViolation(recovered)
	if v == nil {
		t.Fatalf("recovered %v (%T), want *fault.Violation", recovered, recovered)
	}
	if v.Kind != fault.KindProtocol || v.Component != "L1 0" || v.Addr != uint64(blockA) {
		t.Errorf("violation = %+v", v)
	}
	if !strings.Contains(v.Dump, "=== system state at cycle") {
		t.Errorf("violation dump missing system state:\n%s", v.Dump)
	}
	if !strings.Contains(v.Error(), "Upgrade_ACK in state I is illegal") {
		t.Errorf("Error() = %q", v.Error())
	}
}

// The bank-side conversion: WB_Data for an idle block.
func TestBankPanicIsTypedViolation(t *testing.T) {
	s := newTestSystem(t, MESI, 2)
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		s.banks[0].dispatch(Msg{Kind: MsgWBData, Addr: blockA, Src: 0})
	}()
	v := fault.AsViolation(recovered)
	if v == nil {
		t.Fatalf("recovered %v, want *fault.Violation", recovered)
	}
	if v.Kind != fault.KindProtocol || v.Component != "bank 0" {
		t.Errorf("violation = %+v", v)
	}
}

// dumpSet renders every way of the target set with its eviction status —
// the diagnostic attached to resource-exhaustion violations.
func TestDumpSetRendersWays(t *testing.T) {
	s := newTestSystem(t, MESI, 2)
	s.AccessSync(0, blockA, false, false, 0)
	s.Quiesce()
	b := s.bankFor(blockA)
	out := b.dumpSet(blockA)
	if !strings.Contains(out, "install target") || !strings.Contains(out, "evictable") {
		t.Errorf("dumpSet output:\n%s", out)
	}
}

// A zero-value injector plan attached to a system must not change a
// single cycle relative to no injector at all.
func TestNilPlanInjectorIsTransparent(t *testing.T) {
	base := newTestSystem(t, MESI, 2)
	cfg := testConfig(MESI, 2)
	cfg.Faults = fault.MustNewInjector(fault.Plan{Name: "empty"})
	inj, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*System{base, inj} {
		s.AccessSync(0, blockA, true, false, 1)
		s.AccessSync(1, blockA, false, false, 0)
		s.Quiesce()
	}
	if base.Eng.Now() != inj.Eng.Now() {
		t.Fatalf("zero plan moved time: %d vs %d", inj.Eng.Now(), base.Eng.Now())
	}
	if base.Eng.Executed() != inj.Eng.Executed() {
		t.Fatalf("zero plan changed event count: %d vs %d", inj.Eng.Executed(), base.Eng.Executed())
	}
}
