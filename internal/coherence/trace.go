package coherence

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// TraceEvent is one observed coherence message, for protocol visualization
// and for tests that assert exact transaction structure (the paper's
// Figures 1-4).
type TraceEvent struct {
	When sim.Cycle
	Msg  Msg
	Dst  int // receiving L1 id, or DirID for the directory
}

// endpoint renders an L1 id or the directory for human-readable traces.
func endpoint(id int) string {
	if id == DirID {
		return "LLC/Dir"
	}
	return fmt.Sprintf("L1(%d)", id)
}

// String renders "cycle  src -> dst  Kind addr [flags]".
func (e TraceEvent) String() string {
	var flags []string
	if e.Msg.WP {
		flags = append(flags, "WP")
	}
	if e.Msg.Dirty {
		flags = append(flags, "dirty")
	}
	if e.Msg.Excl {
		flags = append(flags, "excl")
	}
	if e.Msg.FromWB {
		flags = append(flags, "fromWB")
	}
	f := ""
	if len(flags) > 0 {
		f = " [" + strings.Join(flags, ",") + "]"
	}
	return fmt.Sprintf("%6d  %-8s -> %-8s %-17s %#x%s",
		e.When, endpoint(e.Msg.Src), endpoint(e.Dst), e.Msg.Kind.String(), uint64(e.Msg.Addr), f)
}

// Tracer collects coherence messages. Attach with System.AttachTracer.
type Tracer struct {
	Events []TraceEvent
}

// Reset clears collected events.
func (t *Tracer) Reset() { t.Events = nil }

// Kinds returns the message kinds in order, for compact assertions.
func (t *Tracer) Kinds() []MsgKind {
	out := make([]MsgKind, len(t.Events))
	for i, e := range t.Events {
		out[i] = e.Msg.Kind
	}
	return out
}

// KindSeq renders the kinds as a single space-separated string.
func (t *Tracer) KindSeq() string {
	parts := make([]string, len(t.Events))
	for i, e := range t.Events {
		parts[i] = e.Msg.Kind.String()
	}
	return strings.Join(parts, " ")
}

// Render produces a readable transcript.
func (t *Tracer) Render(title string) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	b.WriteString(" cycle  from     -> to       message           block\n")
	b.WriteString(" -----  --------    -------- ----------------- -----\n")
	for _, e := range t.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Count returns how many events of kind were seen.
func (t *Tracer) Count(kind MsgKind) int {
	n := 0
	for _, e := range t.Events {
		if e.Msg.Kind == kind {
			n++
		}
	}
	return n
}

// AttachTracer starts recording every coherence message delivered in the
// system (at delivery time, in delivery order). It returns the tracer;
// pass nil checks aside, a system supports one tracer at a time.
func (s *System) AttachTracer() *Tracer {
	t := &Tracer{}
	s.tracer = t
	return t
}

// DetachTracer stops recording.
func (s *System) DetachTracer() { s.tracer = nil }

// traceShard is the per-shard message accounting used inside parallel
// epochs, where workers cannot touch the global counters concurrently.
// Counts are commutative sums, so the per-kind totals a report reads are
// byte-identical to the sequential run; the per-shard message rings are
// diagnostic-only (merged best-effort into crash dumps).
type traceShard struct {
	msgCounts [MsgDataFromOwner + 1]uint64
	lastMsgs  [msgTailN]TraceEvent
	msgPos    uint64
}

// trace records a delivered coherence message. e is the engine the
// delivery executed on: in driver context (sequential, stepping, global
// events) the global counters, message ring, and hooks advance exactly as
// they always have; inside a parallel epoch the accounting lands in the
// executing shard's private buffers (hooks are nil whenever parallel
// epochs run — see ParallelSafe).
func (s *System) trace(e *sim.Engine, m Msg, dst int) {
	if e.InEpoch() {
		ts := &s.shardTrace[e.ShardID()]
		ts.msgCounts[m.Kind]++
		ts.lastMsgs[ts.msgPos&(msgTailN-1)] = TraceEvent{When: e.Now(), Msg: m, Dst: dst}
		ts.msgPos++
		return
	}
	s.msgCounts[m.Kind]++
	s.lastMsgs[s.msgPos&(msgTailN-1)] = TraceEvent{When: e.Now(), Msg: m, Dst: dst}
	s.msgPos++
	if s.Observe != nil {
		s.Observe(m, dst)
	}
	if s.tracer != nil {
		s.tracer.Events = append(s.tracer.Events, TraceEvent{When: e.Now(), Msg: m, Dst: dst})
	}
}

// MsgCount returns how many messages of kind have been delivered since
// construction (coherence traffic accounting).
func (s *System) MsgCount(kind MsgKind) uint64 {
	n := s.msgCounts[kind]
	for i := range s.shardTrace {
		n += s.shardTrace[i].msgCounts[kind]
	}
	return n
}

// TotalMessages returns the total delivered coherence messages.
func (s *System) TotalMessages() uint64 {
	var n uint64
	for _, c := range s.msgCounts {
		n += c
	}
	for i := range s.shardTrace {
		for _, c := range s.shardTrace[i].msgCounts {
			n += c
		}
	}
	return n
}
