package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/sim"
)

// With finite link bandwidth, concurrent bursts queue at the crossbar:
// latencies spread out, but correctness and invariants are unaffected.
func TestLinkContentionSpreadsLatency(t *testing.T) {
	cfg := testConfig(SwiftDir, 4)
	cfg.Timing.LinkOccupancy = 2
	s := MustNewSystem(cfg)

	// Warm 32 shared lines from core 3 (they all live in 2 banks).
	for i := 0; i < 32; i++ {
		s.AccessSync(3, cache.Addr(0x900000+i*64), false, true, 0)
	}
	s.Quiesce()

	// Burst: cores 0-2 each read all 32 lines simultaneously.
	var lats []sim.Cycle
	for c := 0; c < 3; c++ {
		for i := 0; i < 32; i++ {
			s.Submit(c, Access{
				Addr: cache.Addr(0x900000 + i*64), WP: true,
				Done: func(r AccessResult) { lats = append(lats, r.Latency) },
			})
		}
	}
	s.Quiesce()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if len(lats) != 96 {
		t.Fatalf("completions = %d", len(lats))
	}
	min, max := lats[0], lats[0]
	for _, l := range lats {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if min < DefaultTiming().LLCLoadLatency() {
		t.Fatalf("latency %d below the uncontended service time", min)
	}
	if max == min {
		t.Fatal("no latency spread under contention")
	}
	if s.Network().AvgQueueing() == 0 {
		t.Fatal("crossbar recorded no queueing")
	}
}

// Zero occupancy (the default) must leave the calibrated latencies exactly
// intact — the crossbar degenerates to fixed Hop latency.
func TestZeroOccupancyPreservesCalibration(t *testing.T) {
	s := newTestSystem(t, MESI, 2)
	s.AccessSync(1, blockA, false, false, 0)
	r := s.AccessSync(0, blockA, false, false, 0)
	if r.Latency != DefaultTiming().RemoteLoadLatency() {
		t.Fatalf("remote load %d, want %d", r.Latency, DefaultTiming().RemoteLoadLatency())
	}
	if s.Network().AvgQueueing() != 0 {
		t.Fatal("ideal network queued messages")
	}
}

// Contention is deterministic too.
func TestContentionDeterminism(t *testing.T) {
	run := func() sim.Cycle {
		cfg := testConfig(MESI, 4)
		cfg.Timing.LinkOccupancy = 3
		s := MustNewSystem(cfg)
		for i := 0; i < 200; i++ {
			s.Submit(i%4, Access{Addr: cache.Addr(0xA00000 + (i%29)*64), Write: i%5 == 0, Value: uint64(i)})
		}
		s.Quiesce()
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return s.Eng.Now()
	}
	if run() != run() {
		t.Fatal("contention nondeterministic")
	}
}
