package coherence

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/interconnect"
	"repro/internal/proto"
	"repro/internal/sim"
)

// PrefetchMode selects the L1 next-line prefetcher behaviour.
type PrefetchMode uint8

const (
	// PrefetchOff disables prefetching (the paper's configuration).
	PrefetchOff PrefetchMode = iota
	// PrefetchNaive issues next-line prefetches that DROP the
	// write-protection bit (as an unmodified prefetcher would, since the
	// bit arrives with the demand translation): under SwiftDir this
	// silently re-creates E-state copies of write-protected data and
	// REOPENS the timing channel for prefetched lines.
	PrefetchNaive
	// PrefetchWPAware propagates the demand access's write-protection
	// bit to same-page prefetches, preserving SwiftDir's security.
	PrefetchWPAware
)

func (p PrefetchMode) String() string {
	switch p {
	case PrefetchOff:
		return "off"
	case PrefetchNaive:
		return "naive"
	case PrefetchWPAware:
		return "wp-aware"
	}
	return fmt.Sprintf("PrefetchMode(%d)", uint8(p))
}

// SystemConfig describes a coherent memory hierarchy.
type SystemConfig struct {
	NumL1     int          // number of private cache controllers
	L1Params  cache.Params // geometry of each L1
	LLCParams cache.Params // geometry of each LLC bank
	Banks     int          // LLC bank count (power of two)
	Timing    Timing
	Policy    Policy
	DRAM      dram.Config
	Prefetch  PrefetchMode // L1 next-line prefetcher

	// NoFastPath disables the synchronous hit fast path, forcing every
	// access through the event engine. The fast path is byte-identical by
	// construction; the knob exists so equivalence tests can prove it.
	NoFastPath bool

	// Faults, if non-nil, threads the fault injector through the timing
	// layers: extra crossbar occupancy per message, extra bank-local
	// service latency per response, and extra DRAM queueing delay per
	// request. All injected delays are protocol-legal timing perturbation;
	// with Faults nil every hook is a single nil check and the system is
	// byte-identical to one built without this field.
	Faults *fault.Injector
}

// Validate checks the configuration.
func (c SystemConfig) Validate() error {
	if c.NumL1 <= 0 || c.NumL1 > 64 {
		return fmt.Errorf("coherence: NumL1 %d out of range [1,64]", c.NumL1)
	}
	if c.Banks <= 0 || c.Banks&(c.Banks-1) != 0 {
		return fmt.Errorf("coherence: bank count %d not a power of two", c.Banks)
	}
	if c.Policy == nil {
		return fmt.Errorf("coherence: nil policy")
	}
	if err := c.L1Params.Validate(); err != nil {
		return err
	}
	if err := c.LLCParams.Validate(); err != nil {
		return err
	}
	if c.L1Params.BlockSize != c.LLCParams.BlockSize {
		return fmt.Errorf("coherence: L1/LLC block size mismatch %d != %d",
			c.L1Params.BlockSize, c.LLCParams.BlockSize)
	}
	return c.DRAM.Validate()
}

// System is a complete coherent hierarchy: L1 controllers, banked
// LLC+directory, and the DRAM model, driven by one event engine.
type System struct {
	Eng    *sim.Engine
	Timing Timing
	Policy Policy
	L1s    []*L1
	Mem    *dram.Memory

	banks     []*bank
	table     *proto.Table // canonical transition relation driving dispatch
	mapper    *cache.BankMapper
	image     map[cache.Addr]uint64 // main-memory shadow values
	tracer    *Tracer
	msgCounts [MsgDataFromOwner + 1]uint64
	xbar      *interconnect.Crossbar
	faults    *fault.Injector
	numL1     int
	noFast    bool

	// lastMsgs is a fixed ring of the most recently delivered coherence
	// messages; DumpState renders it as the transaction transcript tail of
	// a failure diagnostic. msgPos counts total deliveries.
	lastMsgs [msgTailN]TraceEvent
	msgPos   uint64

	// Cached AccessSync fast-path completion state (see Handle).
	fpDone bool
	fpCond func() bool

	// Record, if set, observes every completed access (for latency CDFs).
	Record func(port int, r AccessResult)

	// Observe, if set, sees every coherence message at delivery time,
	// before the receiving controller (dst L1 id, or DirID) processes it,
	// so the receiver's pre-event state is still inspectable. The model
	// checker uses it to validate every (state, event) pair against the
	// protocol transition relation.
	Observe func(m Msg, dst int)

	// ObserveCPU, if set, sees every CPU access at the moment an L1
	// examines it (after the tag-lookup latency, before any state
	// mutation). Replays of accesses that were queued behind an MSHR are
	// observed again — each examination is a transition-table event.
	ObserveCPU func(port int, block cache.Addr, write bool)

	// ObservePost, if set, fires after the receiving controller has fully
	// processed a message Observe saw, with the receiver's post-event
	// state inspectable. Processing can nest (a data grant synchronously
	// replays merged accesses, which re-enter ObserveCPU): the Post hooks
	// unwind in strict LIFO order relative to their pre-hooks, so a
	// recorder can bracket each transition with a stack. The transcript
	// recorder and the model checker's next-state conformance use these.
	ObservePost func(m Msg, dst int)

	// ObserveCPUPost is ObservePost for CPU examinations.
	ObserveCPUPost func(port int, block cache.Addr, write bool)
}

// NewSystem builds and wires a hierarchy on a fresh engine.
func NewSystem(cfg SystemConfig) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		Eng:    sim.NewEngine(),
		Timing: cfg.Timing,
		Policy: cfg.Policy,
		Mem:    dram.New(cfg.DRAM),
		mapper: cache.NewBankMapper(cfg.Banks, cfg.LLCParams.BlockSize),
		image:  make(map[cache.Addr]uint64),
		numL1:  cfg.NumL1,
		noFast: cfg.NoFastPath,
	}
	s.table = tableForPolicy(cfg.Policy)
	// Crossbar ports: L1s first, then LLC banks.
	xcfg := interconnect.Config{
		Ports:      cfg.NumL1 + cfg.Banks,
		Latency:    cfg.Timing.Hop,
		Occupancy:  cfg.Timing.LinkOccupancy,
		JitterMax:  cfg.Timing.JitterMax,
		JitterSeed: cfg.Timing.JitterSeed,
	}
	if cfg.Timing.SocketCores > 0 {
		xcfg.Distance = func(src, dst int) sim.Cycle {
			if s.socketOf(src) != s.socketOf(dst) {
				return s.Timing.CrossSocketExtra
			}
			return 0
		}
	}
	if cfg.Faults != nil {
		s.faults = cfg.Faults
		xcfg.Extra = cfg.Faults.LinkDelay
		s.Mem.Extra = cfg.Faults.DRAMDelay
		cfg.Faults.Attach(s.Eng)
		cfg.Faults.Diagnose = s.DumpState
	}
	xbar, err := interconnect.New(s.Eng, xcfg)
	if err != nil {
		return nil, err
	}
	s.xbar = xbar
	for i := 0; i < cfg.Banks; i++ {
		s.banks = append(s.banks, newBank(i, s, cfg.LLCParams))
	}
	for i := 0; i < cfg.NumL1; i++ {
		l1 := newL1(i, s, cfg.L1Params)
		l1.prefetch = cfg.Prefetch
		s.L1s = append(s.L1s, l1)
	}
	return s, nil
}

// MustNewSystem is NewSystem for static configurations.
func MustNewSystem(cfg SystemConfig) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *System) bankFor(addr cache.Addr) *bank {
	return s.banks[s.mapper.Bank(addr)]
}

// bankPort returns a bank's crossbar port.
func (s *System) bankPort(bankID int) int { return s.numL1 + bankID }

// socketOf maps a crossbar port (L1 or bank) to its NUMA socket: L1s are
// grouped SocketCores at a time; LLC banks distribute round-robin across
// the sockets (each socket holds its slice of the shared LLC).
func (s *System) socketOf(port int) int {
	if s.Timing.SocketCores <= 0 {
		return 0
	}
	if port < s.numL1 {
		return port / s.Timing.SocketCores
	}
	sockets := (s.numL1 + s.Timing.SocketCores - 1) / s.Timing.SocketCores
	if sockets == 0 {
		return 0
	}
	return (port - s.numL1) % sockets
}

// Network returns the interconnect for statistics inspection.
func (s *System) Network() *interconnect.Crossbar { return s.xbar }

// initialToken derives the shadow value of untouched memory from its
// address, so the data-value invariant can be checked without
// initialization.
func initialToken(addr cache.Addr) uint64 {
	return uint64(addr)*0x9E3779B97F4A7C15 | 1
}

func (s *System) memRead(addr cache.Addr) uint64 {
	if v, ok := s.image[addr]; ok {
		return v
	}
	return initialToken(addr)
}

func (s *System) memWrite(addr cache.Addr, v uint64) { s.image[addr] = v }

// Submit hands an access to port's L1. Completion is reported through
// a.Done and the system Record hook as the simulation advances.
func (s *System) Submit(port int, a Access) {
	s.L1s[port].Request(a)
}

// TryFastAccess attempts to complete a stable-state L1 hit synchronously:
// on success the array, LRU, and statistics have been updated exactly as
// the event path would have, and the returned latency is the one the event
// path would have reported — without a single event scheduled. The caller
// owns completion: it must account the latency (and invoke any callback)
// itself. Non-trivial cases — miss, transient state, upgrade that needs
// the directory, a busy or pinned bank, pre-charged translation latency, a
// Record hook, or a timing configuration in which a message issued this
// cycle could land inside the hit window — return ok=false, and the caller
// falls back to Submit.
func (s *System) TryFastAccess(port int, a Access) (AccessResult, bool) {
	if s.noFast || s.Record != nil || a.Extra != 0 {
		return AccessResult{}, false
	}
	if s.Timing.L1Tag >= s.Timing.Hop {
		// The crossbar's minimum delivery delay is Hop, so with
		// L1Tag < Hop nothing sent at or after submission time can reach
		// the L1 at or before the would-be completion time. Exotic
		// timing sweeps that violate this stay on the event path.
		return AccessResult{}, false
	}
	return s.L1s[port].tryFast(&a)
}

// sysOpFastDone is the System's only payload op: an AccessSync fast-path
// completion point.
const sysOpFastDone uint8 = 1

// Handle implements sim.Handler for the AccessSync fast path: the single
// completion event it schedules stands in for the event path's opL1Process
// at the same (cycle, seq), so engine stepping is byte-identical.
func (s *System) Handle(p sim.Payload) {
	if p.Op != sysOpFastDone {
		panic(fmt.Sprintf("coherence: system: unknown payload op %d", p.Op))
	}
	s.fpDone = true
}

// AccessSync submits an access and runs the engine until it completes,
// returning the result. It is the probe interface the attack framework
// and the protocol tests use.
func (s *System) AccessSync(port int, addr cache.Addr, write bool, wp bool, value uint64) AccessResult {
	if r, ok := s.TryFastAccess(port, Access{Addr: addr, Write: write, WP: wp, Value: value}); ok {
		if s.Eng.Pending() == 0 {
			// Nothing else in flight: skip the event engine entirely and
			// advance the clock to the completion time.
			s.Eng.RunTo(s.Eng.Now() + r.Latency)
			return r
		}
		// In-flight background work (writeback tails, queued wakeups):
		// schedule one completion event where the event path would have
		// scheduled its tag-lookup event, so the engine stops at exactly
		// the same point.
		s.fpDone = false
		if s.fpCond == nil {
			s.fpCond = func() bool { return !s.fpDone }
		}
		s.Eng.ScheduleEvent(r.Latency, s, sim.Payload{Op: sysOpFastDone})
		s.Eng.RunWhile(s.fpCond)
		return r
	}
	var out AccessResult
	done := false
	s.Submit(port, Access{
		Addr: addr, Write: write, WP: wp, Value: value,
		Done: func(r AccessResult) { out = r; done = true },
	})
	s.Eng.RunWhile(func() bool { return !done })
	if !done {
		panic("coherence: access did not complete (event queue drained)")
	}
	return out
}

// Quiesce drains all in-flight activity.
func (s *System) Quiesce() { s.Eng.Run() }

// FastPathTotals sums the fast/slow access split over all L1 controllers.
func (s *System) FastPathTotals() (fast, slow uint64) {
	for _, l1 := range s.L1s {
		fast += l1.Stats.FastHits
		slow += l1.Stats.SlowPath
	}
	return fast, slow
}

// BankStatsTotal sums statistics over all banks.
func (s *System) BankStatsTotal() BankStats {
	var t BankStats
	for _, b := range s.banks {
		t.Requests += b.Stats.Requests
		t.LLCServed += b.Stats.LLCServed
		t.Forwards += b.Stats.Forwards
		t.MemFetches += b.Stats.MemFetches
		t.Invals += b.Stats.Invals
		t.UpgradeAcks += b.Stats.UpgradeAcks
		t.Recalls += b.Stats.Recalls
		t.Writebacks += b.Stats.Writebacks
		t.QueuedWakeups += b.Stats.QueuedWakeups
	}
	return t
}

// ArbPromotions sums, over all banks, the queued requests the arbiter
// inserted ahead of at least one earlier arrival. Always 0 unless the
// policy implements Arbiter.
func (s *System) ArbPromotions() uint64 {
	var n uint64
	for _, b := range s.banks {
		n += b.arbPromotions
	}
	return n
}

// DirStateOf reports the directory state of a block (DirInvalid if not
// resident). For tests and invariant checks.
func (s *System) DirStateOf(addr cache.Addr) DirState {
	b := s.bankFor(addr)
	if e, ok := b.entries[addr]; ok {
		return e.state
	}
	return DirInvalid
}

// L1StateOf reports port's L1 line state for a block.
func (s *System) L1StateOf(port int, addr cache.Addr) cache.LineState {
	if ln := s.L1s[port].Array().Lookup(addr); ln != nil {
		return ln.State
	}
	return cache.Invalid
}

// CheckInvariants validates the quiesced system:
//
//   - SWMR: at most one L1 holds a block E/M, and then no L1 holds it S;
//   - inclusion: every L1-resident block is LLC-resident;
//   - directory agreement: owner/sharer records match L1 contents;
//   - WP-never-exclusive: under SwiftDir a write-protected line is never
//     E or M in any L1 (the security property, structurally).
//
// It must be called with no in-flight transactions and returns the first
// violation found.
func (s *System) CheckInvariants() error {
	for _, b := range s.banks {
		if len(b.busy) != 0 {
			return fmt.Errorf("bank %d: %d transactions still busy", b.id, len(b.busy))
		}
	}
	for _, l1 := range s.L1s {
		if n := l1.OutstandingMisses(); n != 0 {
			return fmt.Errorf("L1 %d: %d MSHRs still outstanding", l1.ID, n)
		}
	}

	type holders struct {
		exclusive []int
		owned     []int
		forward   []int
		shared    []int
	}
	byBlock := make(map[cache.Addr]*holders)
	for _, l1 := range s.L1s {
		id := l1.ID
		var err error
		l1.Array().ForEachValid(func(addr cache.Addr, ln *cache.Line) {
			h := byBlock[addr]
			if h == nil {
				h = &holders{}
				byBlock[addr] = h
			}
			switch ln.State {
			case cache.Exclusive, cache.Modified:
				h.exclusive = append(h.exclusive, id)
			case cache.Owned:
				h.owned = append(h.owned, id)
			case cache.Forward:
				h.forward = append(h.forward, id)
			case cache.Shared:
				h.shared = append(h.shared, id)
			}
			if (s.Policy == SwiftDir || s.Policy == SwiftDirMOESI) && ln.WP && ln.State != cache.Shared {
				err = fmt.Errorf("L1 %d: write-protected block %#x in state %v under %s",
					id, addr, ln.State, s.Policy.Name())
			}
			// Inclusion.
			if _, ok := s.bankFor(addr).entries[addr]; !ok {
				err = fmt.Errorf("L1 %d: block %#x resident but absent from LLC (inclusion)", id, addr)
			}
		})
		if err != nil {
			return err
		}
	}
	for addr, h := range byBlock {
		if len(h.exclusive) > 1 {
			return fmt.Errorf("SWMR: block %#x exclusive in L1s %v", addr, h.exclusive)
		}
		if len(h.exclusive) == 1 && (len(h.shared) > 0 || len(h.owned) > 0 || len(h.forward) > 0) {
			return fmt.Errorf("SWMR: block %#x exclusive in L1 %d alongside O=%v F=%v S=%v",
				addr, h.exclusive[0], h.owned, h.forward, h.shared)
		}
		// MOESI: at most one Owned holder; O may coexist with S only.
		if len(h.owned) > 1 {
			return fmt.Errorf("SWMR: block %#x owned by multiple L1s %v", addr, h.owned)
		}
		// MESIF: at most one Forward holder; F coexists with S only.
		if len(h.forward) > 1 {
			return fmt.Errorf("SWMR: block %#x forwarded by multiple L1s %v", addr, h.forward)
		}
		if len(h.forward) > 0 && len(h.owned) > 0 {
			return fmt.Errorf("SWMR: block %#x has both O=%v and F=%v holders", addr, h.owned, h.forward)
		}
	}
	// Directory agreement.
	for _, b := range s.banks {
		for addr, e := range b.entries {
			switch e.state {
			case DirExclusive, DirModifiedL1:
				st := s.L1StateOf(e.owner, addr)
				if st != cache.Exclusive && st != cache.Modified {
					return fmt.Errorf("dir: block %#x %v owner %d holds %v", addr, e.state, e.owner, st)
				}
			case DirShared:
				for id, sh := 0, e.sharers; sh != 0; id++ {
					if sh&1 != 0 {
						st := s.L1StateOf(id, addr)
						if st != cache.Shared && st != cache.Forward {
							return fmt.Errorf("dir: block %#x sharer %d holds %v", addr, id, st)
						}
						if st == cache.Forward && e.forwarder != id {
							return fmt.Errorf("dir: block %#x F holder %d not recorded (forwarder=%d)", addr, id, e.forwarder)
						}
					}
					sh >>= 1
				}
				if e.forwarder >= 0 {
					if st := s.L1StateOf(e.forwarder, addr); st != cache.Forward {
						return fmt.Errorf("dir: block %#x forwarder %d holds %v", addr, e.forwarder, st)
					}
				}
			case DirOwned:
				if st := s.L1StateOf(e.owner, addr); st != cache.Owned {
					return fmt.Errorf("dir: block %#x DirO owner %d holds %v", addr, e.owner, st)
				}
				for id, sh := 0, e.sharers; sh != 0; id++ {
					if sh&1 != 0 {
						if st := s.L1StateOf(id, addr); st != cache.Shared {
							return fmt.Errorf("dir: block %#x DirO sharer %d holds %v", addr, id, st)
						}
					}
					sh >>= 1
				}
			case DirPresent:
				h := byBlock[addr]
				if h != nil && (len(h.exclusive) > 0 || len(h.shared) > 0) {
					return fmt.Errorf("dir: block %#x DirPresent but cached in L1s", addr)
				}
			}
		}
	}
	return nil
}
