package coherence

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/interconnect"
	"repro/internal/proto"
	"repro/internal/sim"
)

// PrefetchMode selects the L1 next-line prefetcher behaviour.
type PrefetchMode uint8

const (
	// PrefetchOff disables prefetching (the paper's configuration).
	PrefetchOff PrefetchMode = iota
	// PrefetchNaive issues next-line prefetches that DROP the
	// write-protection bit (as an unmodified prefetcher would, since the
	// bit arrives with the demand translation): under SwiftDir this
	// silently re-creates E-state copies of write-protected data and
	// REOPENS the timing channel for prefetched lines.
	PrefetchNaive
	// PrefetchWPAware propagates the demand access's write-protection
	// bit to same-page prefetches, preserving SwiftDir's security.
	PrefetchWPAware
)

func (p PrefetchMode) String() string {
	switch p {
	case PrefetchOff:
		return "off"
	case PrefetchNaive:
		return "naive"
	case PrefetchWPAware:
		return "wp-aware"
	}
	return fmt.Sprintf("PrefetchMode(%d)", uint8(p))
}

// SystemConfig describes a coherent memory hierarchy.
type SystemConfig struct {
	NumL1     int          // number of private cache controllers
	L1Params  cache.Params // geometry of each L1
	LLCParams cache.Params // geometry of each LLC bank
	Banks     int          // LLC bank count (power of two)
	Timing    Timing
	Policy    Policy
	DRAM      dram.Config
	Prefetch  PrefetchMode // L1 next-line prefetcher

	// Topology selects the interconnect model: "" or "crossbar" builds
	// the full crossbar (the default, byte-identical to every pre-mesh
	// build), "mesh" a MeshW x MeshH 2D mesh with XY dimension-order
	// routing. Timing.Hop is the base traversal latency in both.
	Topology string

	// MeshW, MeshH are the mesh dimensions (required for Topology
	// "mesh"). MeshPerHop adds latency per inter-router hop, and
	// MeshLinkOccupancy serializes messages per directed link (the
	// congestion model; 0 keeps the mesh pure-latency and routable onto
	// a sharded engine). MeshRouterOf optionally pins each fabric port
	// (L1s, then banks, then cluster hubs) to a router; when nil, L1s,
	// banks, and hubs spread evenly in index order.
	MeshW, MeshH      int
	MeshPerHop        sim.Cycle
	MeshLinkOccupancy sim.Cycle
	MeshRouterOf      []int

	// Clusters > 1 enables the two-level directory: the NumL1 controllers
	// partition into Clusters equal contiguous clusters, each with a hub —
	// a cluster-level directory that records exactly which locals hold
	// each block, filters evictions, multicasts invalidations, and
	// aggregates their acks — while the home directory tracks sharer
	// CLUSTERS (one bit each) instead of individual L1s. This lifts the
	// flat 64-sharer bitmask limit to 64 clusters x 64 locals. Owners are
	// still tracked by exact L1 id at the home, so the E/M paths (the
	// paper's timing channel) are unchanged. 0 or 1 keeps the flat
	// directory, byte-identical to a build without this field.
	Clusters int

	// NoFastPath disables the synchronous hit fast path, forcing every
	// access through the event engine. The fast path is byte-identical by
	// construction; the knob exists so equivalence tests can prove it.
	// Parallel epochs additionally require it (see ParallelSafe): the fast
	// path reads bank occupancy from the submitting core's shard.
	NoFastPath bool

	// Shards selects the event-engine layout: 0 or 1 builds the system on
	// one sequential engine (the default, byte-identical baseline); N > 1
	// builds it on a sharded engine with lookahead Timing.Hop, the
	// crossbar's minimum cross-shard interaction latency. Results are
	// byte-identical for every N — sharding changes wall-clock time only.
	Shards int

	// ShardOfL1 optionally pins each L1 controller to a shard (len NumL1,
	// values in [0, Shards)). The core layer uses it to keep a core's data
	// and instruction L1s on the core's shard; when nil, L1 i maps to
	// shard i*Shards/NumL1. Banks always map bank b to shard
	// b*Shards/Banks. Ignored unless Shards > 1.
	ShardOfL1 []int

	// Faults, if non-nil, threads the fault injector through the timing
	// layers: extra crossbar occupancy per message (or, on a mesh, extra
	// hold time per directed link), extra bank-local service latency per
	// response, transient cluster-hub busy windows, and extra DRAM
	// queueing delay per request. All injected delays are protocol-legal
	// timing perturbation; with Faults nil every hook is a single nil
	// check and the system is byte-identical to one built without this
	// field.
	Faults *fault.Injector
}

// Validate checks the configuration.
func (c SystemConfig) Validate() error {
	if c.Clusters > 1 {
		if c.Clusters > 64 {
			return fmt.Errorf("coherence: cluster count %d out of range [2,64]", c.Clusters)
		}
		if c.NumL1 <= 0 || c.NumL1%c.Clusters != 0 {
			return fmt.Errorf("coherence: NumL1 %d not divisible into %d clusters", c.NumL1, c.Clusters)
		}
		if locals := c.NumL1 / c.Clusters; locals > 64 {
			return fmt.Errorf("coherence: %d L1s per cluster exceeds the 64-local hub limit", locals)
		}
		if c.Policy != nil && (c.Policy.OwnershipTransfer() || c.Policy.ForwardStateFor(false) || c.Policy.ForwardStateFor(true)) {
			return fmt.Errorf("coherence: two-level directory does not support owned/forward-state policies (%s)", c.Policy.Name())
		}
		if c.Timing.SocketCores > 0 {
			return fmt.Errorf("coherence: two-level directory is incompatible with NUMA socket distance")
		}
		if _, ok := c.Policy.(Arbiter); ok {
			// A bank arbiter may promote a queued request ahead of an older
			// eviction notice from the same cluster, reordering the hub's
			// emission order at the home and invalidating the hub's
			// "cluster last" certification.
			return fmt.Errorf("coherence: two-level directory requires FIFO bank queues (policy %s arbitrates)", c.Policy.Name())
		}
	} else if c.NumL1 <= 0 || c.NumL1 > 64 {
		return fmt.Errorf("coherence: NumL1 %d out of range [1,64] (use Clusters for larger machines)", c.NumL1)
	}
	switch c.Topology {
	case "", "crossbar":
	case "mesh":
		if c.MeshW < 1 || c.MeshH < 1 {
			return fmt.Errorf("coherence: mesh topology requires positive dimensions, got %dx%d", c.MeshW, c.MeshH)
		}
		if c.Timing.SocketCores > 0 || c.Timing.JitterMax > 0 || c.Timing.LinkOccupancy > 0 {
			return fmt.Errorf("coherence: mesh topology is incompatible with crossbar occupancy, jitter, and socket distance (use MeshLinkOccupancy)")
		}
		if c.Shards > 1 && c.MeshLinkOccupancy > 0 {
			return fmt.Errorf("coherence: a link-occupancy mesh cannot be sharded (per-link FIFO state is engine-global)")
		}
	default:
		return fmt.Errorf("coherence: unknown topology %q", c.Topology)
	}
	if c.Banks <= 0 || c.Banks&(c.Banks-1) != 0 {
		return fmt.Errorf("coherence: bank count %d not a power of two", c.Banks)
	}
	if c.Policy == nil {
		return fmt.Errorf("coherence: nil policy")
	}
	if err := c.L1Params.Validate(); err != nil {
		return err
	}
	if err := c.LLCParams.Validate(); err != nil {
		return err
	}
	if c.L1Params.BlockSize != c.LLCParams.BlockSize {
		return fmt.Errorf("coherence: L1/LLC block size mismatch %d != %d",
			c.L1Params.BlockSize, c.LLCParams.BlockSize)
	}
	if c.Shards < 0 || c.Shards > 64 {
		return fmt.Errorf("coherence: shard count %d out of range [0,64]", c.Shards)
	}
	if c.Shards > 1 {
		if c.Timing.Hop < 1 {
			return fmt.Errorf("coherence: sharding requires a nonzero hop latency (the lookahead), got %d", c.Timing.Hop)
		}
		if c.Timing.LLCTag < c.Timing.Hop {
			// Mid-epoch dispatches issue DRAM fetches as global events after
			// the LLC tag latency; the lookahead bound requires it to be at
			// least the hop latency.
			return fmt.Errorf("coherence: sharding requires LLCTag >= Hop (%d < %d)", c.Timing.LLCTag, c.Timing.Hop)
		}
		if c.ShardOfL1 != nil {
			if len(c.ShardOfL1) != c.NumL1 {
				return fmt.Errorf("coherence: ShardOfL1 has %d entries for %d L1s", len(c.ShardOfL1), c.NumL1)
			}
			for i, sh := range c.ShardOfL1 {
				if sh < 0 || sh >= c.Shards {
					return fmt.Errorf("coherence: ShardOfL1[%d] = %d out of range [0,%d)", i, sh, c.Shards)
				}
			}
		}
	}
	return c.DRAM.Validate()
}

// System is a complete coherent hierarchy: L1 controllers, banked
// LLC+directory, and the DRAM model, driven by one event engine.
type System struct {
	Eng    *sim.Engine
	Timing Timing
	Policy Policy
	L1s    []*L1
	Mem    *dram.Memory

	banks     []*bank
	table     *proto.Table // canonical transition relation driving dispatch
	mapper    *cache.BankMapper
	tracer    *Tracer
	msgCounts [MsgDataFromOwner + 1]uint64
	net       interconnect.Fabric
	faults    *fault.Injector
	numL1     int
	noFast    bool

	// Two-level directory state: hubs are the per-cluster directories
	// (empty when flat), localsPer the cluster width. twoLevel gates the
	// routing funnels and the home directory's cluster-bit bookkeeping.
	hubs      []*hub
	localsPer int
	twoLevel  bool

	// Sharded-engine state: sh is the sharded driver (nil on one engine),
	// shardOfL1/shardOfBank/shardOfHub the component-to-shard maps, routed
	// whether the fabric delivers through the shard Route hook
	// (pure-latency networks only), shardTrace the per-shard message
	// accounting used inside parallel epochs.
	sh          *sim.Sharded
	shardOfL1   []int
	shardOfBank []int
	shardOfHub  []int
	routed      bool
	shardTrace  []traceShard

	// lastMsgs is a fixed ring of the most recently delivered coherence
	// messages; DumpState renders it as the transaction transcript tail of
	// a failure diagnostic. msgPos counts total deliveries.
	lastMsgs [msgTailN]TraceEvent
	msgPos   uint64

	// Cached AccessSync fast-path completion state (see Handle).
	fpDone bool
	fpCond func() bool

	// Record, if set, observes every completed access (for latency CDFs).
	Record func(port int, r AccessResult)

	// Observe, if set, sees every coherence message at delivery time,
	// before the receiving controller (dst L1 id, or DirID) processes it,
	// so the receiver's pre-event state is still inspectable. The model
	// checker uses it to validate every (state, event) pair against the
	// protocol transition relation.
	Observe func(m Msg, dst int)

	// ObserveCPU, if set, sees every CPU access at the moment an L1
	// examines it (after the tag-lookup latency, before any state
	// mutation). Replays of accesses that were queued behind an MSHR are
	// observed again — each examination is a transition-table event.
	ObserveCPU func(port int, block cache.Addr, write bool)

	// ObservePost, if set, fires after the receiving controller has fully
	// processed a message Observe saw, with the receiver's post-event
	// state inspectable. Processing can nest (a data grant synchronously
	// replays merged accesses, which re-enter ObserveCPU): the Post hooks
	// unwind in strict LIFO order relative to their pre-hooks, so a
	// recorder can bracket each transition with a stack. The transcript
	// recorder and the model checker's next-state conformance use these.
	ObservePost func(m Msg, dst int)

	// ObserveCPUPost is ObservePost for CPU examinations.
	ObserveCPUPost func(port int, block cache.Addr, write bool)
}

// NewSystem builds and wires a hierarchy on a fresh engine.
func NewSystem(cfg SystemConfig) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		Timing: cfg.Timing,
		Policy: cfg.Policy,
		Mem:    dram.New(cfg.DRAM),
		mapper: cache.NewBankMapper(cfg.Banks, cfg.LLCParams.BlockSize),
		numL1:  cfg.NumL1,
		noFast: cfg.NoFastPath,
	}
	numHubs := 0
	if cfg.Clusters > 1 {
		s.twoLevel = true
		s.localsPer = cfg.NumL1 / cfg.Clusters
		numHubs = cfg.Clusters
	}
	// Fabric ports: L1s first, then LLC banks, then cluster hubs.
	ports := cfg.NumL1 + cfg.Banks + numHubs
	mesh := cfg.Topology == "mesh"
	var routerOf []int
	if mesh {
		routerOf = cfg.MeshRouterOf
		if routerOf == nil {
			routers := cfg.MeshW * cfg.MeshH
			routerOf = make([]int, ports)
			for i := 0; i < cfg.NumL1; i++ {
				routerOf[i] = i * routers / cfg.NumL1
			}
			for b := 0; b < cfg.Banks; b++ {
				routerOf[cfg.NumL1+b] = b * routers / cfg.Banks
			}
			for c := 0; c < numHubs; c++ {
				// A hub sits on its cluster's first tile.
				routerOf[cfg.NumL1+cfg.Banks+c] = routerOf[c*s.localsPer]
			}
		}
	}
	if cfg.Shards > 1 {
		// Sharded layout: one engine per shard. Shard 0's engine doubles as
		// s.Eng, the driver-context handle every synchronous caller uses.
		s.shardOfL1 = make([]int, cfg.NumL1)
		for i := range s.shardOfL1 {
			if cfg.ShardOfL1 != nil {
				s.shardOfL1[i] = cfg.ShardOfL1[i]
			} else {
				s.shardOfL1[i] = i * cfg.Shards / cfg.NumL1
			}
		}
		s.shardOfBank = make([]int, cfg.Banks)
		for b := range s.shardOfBank {
			s.shardOfBank[b] = b * cfg.Shards / cfg.Banks
		}
		s.shardOfHub = make([]int, numHubs)
		for c := range s.shardOfHub {
			// A hub lives on its cluster's shard: with the default
			// cluster-contiguous L1 map the whole cluster plus its hub
			// share one shard and intra-cluster traffic never crosses.
			s.shardOfHub[c] = s.shardOfL1[c*s.localsPer]
		}
		// The lookahead is the fabric's minimum cross-shard latency: the
		// crossbar's hop latency, or on a mesh the smallest distance-
		// dependent latency between ports on different shards — clamped to
		// LLCTag, because mid-epoch dispatches issue DRAM fetches as global
		// events after the LLC tag latency (see fetchAndGrant).
		la := cfg.Timing.Hop
		if mesh && cfg.MeshPerHop > 0 {
			la = meshCrossShardLookahead(cfg, routerOf, func(port int) int {
				if port < cfg.NumL1 {
					return s.shardOfL1[port]
				}
				if b := port - cfg.NumL1; b < cfg.Banks {
					return s.shardOfBank[b]
				}
				return s.shardOfHub[port-cfg.NumL1-cfg.Banks]
			})
		}
		s.sh = sim.NewSharded(cfg.Shards, la)
		s.Eng = s.sh.Shard(0)
		s.sh.OnReplayOp(s.applySideOp)
		s.shardTrace = make([]traceShard, cfg.Shards)
	} else {
		s.Eng = sim.NewEngine()
	}
	s.table = tableForPolicy(cfg.Policy)
	if mesh {
		mcfg := interconnect.MeshConfig{
			Ports:         ports,
			W:             cfg.MeshW,
			H:             cfg.MeshH,
			Latency:       cfg.Timing.Hop,
			PerHop:        cfg.MeshPerHop,
			LinkOccupancy: cfg.MeshLinkOccupancy,
			RouterOf:      routerOf,
		}
		if cfg.Faults != nil {
			// Mesh fault wiring mirrors the crossbar branch below: the
			// per-directed-link hook replaces the crossbar's per-message
			// Extra, and the DRAM/bank/hub hooks are topology-independent.
			// A non-nil LinkExtra disqualifies the Route fast path, so a
			// faulted mesh always runs sequential stepping and the
			// injector's draw order is the global message order.
			s.faults = cfg.Faults
			mcfg.LinkExtra = cfg.Faults.MeshDelay
			s.Mem.Extra = cfg.Faults.DRAMDelay
			cfg.Faults.Attach(s.Eng)
			cfg.Faults.Diagnose = s.DumpState
		}
		if s.sh != nil && mcfg.LinkOccupancy == 0 && mcfg.LinkExtra == nil {
			// Pure-latency mesh on a sharded engine: deliver each message
			// directly onto the destination's home shard with its full
			// distance-dependent latency. Every latency is at least the hop
			// latency and every cross-shard latency at least the lookahead
			// (which was derived from the cross-shard minimum), so mid-epoch
			// sends are always legal.
			s.routed = true
			mcfg.Route = func(src, dst int, lat sim.Cycle, h sim.Handler, p sim.Payload) {
				s.portEngine(src).SendRemote(s.shardOfPort(dst), lat, h, p)
			}
		}
		net, err := interconnect.NewMesh(s.Eng, mcfg)
		if err != nil {
			return nil, err
		}
		s.net = net
	} else {
		xcfg := interconnect.Config{
			Ports:      ports,
			Latency:    cfg.Timing.Hop,
			Occupancy:  cfg.Timing.LinkOccupancy,
			JitterMax:  cfg.Timing.JitterMax,
			JitterSeed: cfg.Timing.JitterSeed,
		}
		if cfg.Timing.SocketCores > 0 {
			xcfg.Distance = func(src, dst int) sim.Cycle {
				if s.socketOf(src) != s.socketOf(dst) {
					return s.Timing.CrossSocketExtra
				}
				return 0
			}
		}
		if cfg.Faults != nil {
			s.faults = cfg.Faults
			xcfg.Extra = cfg.Faults.LinkDelay
			s.Mem.Extra = cfg.Faults.DRAMDelay
			cfg.Faults.Attach(s.Eng)
			cfg.Faults.Diagnose = s.DumpState
		}
		if s.sh != nil && xcfg.Occupancy == 0 && xcfg.JitterMax == 0 && xcfg.Distance == nil && xcfg.Extra == nil {
			// Pure-latency crossbar on a sharded engine: deliver each message
			// directly onto the destination's home shard. The delivery latency is
			// the hop latency — exactly the lookahead — so mid-epoch cross-shard
			// sends are always legal. Port-time features (occupancy, jitter,
			// NUMA distance, fault extra) serialize through shared bookkeeping and
			// keep the closure-free default path; those systems still run sharded,
			// but only in sequential-stepping mode (see ParallelSafe).
			s.routed = true
			xcfg.Route = func(src, dst int, lat sim.Cycle, h sim.Handler, p sim.Payload) {
				s.portEngine(src).SendRemote(s.shardOfPort(dst), lat, h, p)
			}
		}
		xbar, err := interconnect.New(s.Eng, xcfg)
		if err != nil {
			return nil, err
		}
		s.net = xbar
	}
	for c := 0; c < numHubs; c++ {
		s.hubs = append(s.hubs, newHub(c, s))
	}
	for i := 0; i < cfg.Banks; i++ {
		s.banks = append(s.banks, newBank(i, s, cfg.LLCParams))
	}
	for i := 0; i < cfg.NumL1; i++ {
		l1 := newL1(i, s, cfg.L1Params)
		l1.prefetch = cfg.Prefetch
		s.L1s = append(s.L1s, l1)
	}
	return s, nil
}

// meshCrossShardLookahead returns the minimum mesh latency between ports
// living on different shards, clamped to LLCTag (Validate guarantees
// LLCTag >= Hop when sharded, so the result is always at least Hop).
func meshCrossShardLookahead(cfg SystemConfig, routerOf []int, shardOf func(int) int) sim.Cycle {
	la := cfg.Timing.LLCTag
	w := cfg.MeshW
	for a := range routerOf {
		for b := range routerOf {
			if shardOf(a) == shardOf(b) {
				continue
			}
			ax, ay := routerOf[a]%w, routerOf[a]/w
			bx, by := routerOf[b]%w, routerOf[b]/w
			dx, dy := ax-bx, ay-by
			if dx < 0 {
				dx = -dx
			}
			if dy < 0 {
				dy = -dy
			}
			lat := cfg.Timing.Hop + cfg.MeshPerHop*sim.Cycle(dx+dy)
			if lat < la {
				la = lat
			}
		}
	}
	return la
}

// MustNewSystem is NewSystem for static configurations.
func MustNewSystem(cfg SystemConfig) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *System) bankFor(addr cache.Addr) *bank {
	return s.banks[s.mapper.Bank(addr)]
}

// bankPort returns a bank's fabric port.
func (s *System) bankPort(bankID int) int { return s.numL1 + bankID }

// clusterOf maps an L1 id to its cluster. Only meaningful when twoLevel.
func (s *System) clusterOf(l1 int) int { return l1 / s.localsPer }

// hubPort returns a cluster hub's fabric port (after L1s and banks).
func (s *System) hubPort(cluster int) int { return s.numL1 + len(s.banks) + cluster }

// socketOf maps a crossbar port (L1 or bank) to its NUMA socket: L1s are
// grouped SocketCores at a time; LLC banks distribute round-robin across
// the sockets (each socket holds its slice of the shared LLC).
func (s *System) socketOf(port int) int {
	if s.Timing.SocketCores <= 0 {
		return 0
	}
	if port < s.numL1 {
		return port / s.Timing.SocketCores
	}
	sockets := (s.numL1 + s.Timing.SocketCores - 1) / s.Timing.SocketCores
	if sockets == 0 {
		return 0
	}
	return (port - s.numL1) % sockets
}

// Network returns the interconnect fabric for statistics inspection.
func (s *System) Network() interconnect.Fabric { return s.net }

// initialToken derives the shadow value of untouched memory from its
// address, so the data-value invariant can be checked without
// initialization.
func initialToken(addr cache.Addr) uint64 {
	return uint64(addr)*0x9E3779B97F4A7C15 | 1
}

// memRead and memWrite access the shadow memory image. The image is
// partitioned per bank (a block's image entry lives with its home bank),
// so bank-local events may touch it from their own shard without
// synchronization: no two banks ever map the same block.
func (s *System) memRead(addr cache.Addr) uint64 {
	if v, ok := s.bankFor(addr).image[addr]; ok {
		return v
	}
	return initialToken(addr)
}

func (s *System) memWrite(addr cache.Addr, v uint64) { s.bankFor(addr).image[addr] = v }

// --- shard facade ---------------------------------------------------------
//
// Every synchronous driver (AccessSync, Quiesce, the workload layer)
// funnels through these. On one engine they are the plain Engine calls; on
// a sharded engine they step the shards in exact sequential order, which
// preserves the precise stop cycles the synchronous API promises. Parallel
// epochs are reserved for the paths that can tolerate barrier-granular
// stopping (cpu.Run) and satisfy ParallelSafe.

// shardOfPort maps a fabric port (L1s first, then banks, then hubs) to its
// home shard. Only meaningful when sharded.
func (s *System) shardOfPort(port int) int {
	if port < s.numL1 {
		return s.shardOfL1[port]
	}
	if b := port - s.numL1; b < len(s.shardOfBank) {
		return s.shardOfBank[b]
	}
	return s.shardOfHub[port-s.numL1-len(s.shardOfBank)]
}

// portEngine returns the engine hosting a crossbar port's component.
func (s *System) portEngine(port int) *sim.Engine {
	if s.sh == nil {
		return s.Eng
	}
	return s.sh.Shard(s.shardOfPort(port))
}

// engineForL1 returns the engine L1 id is wired to.
func (s *System) engineForL1(id int) *sim.Engine {
	if s.sh == nil {
		return s.Eng
	}
	return s.sh.Shard(s.shardOfL1[id])
}

// engineForBank returns the engine bank id is wired to.
func (s *System) engineForBank(id int) *sim.Engine {
	if s.sh == nil {
		return s.Eng
	}
	return s.sh.Shard(s.shardOfBank[id])
}

// engineForHub returns the engine cluster hub c is wired to.
func (s *System) engineForHub(c int) *sim.Engine {
	if s.sh == nil {
		return s.Eng
	}
	return s.sh.Shard(s.shardOfHub[c])
}

// EngineForL1 exposes an L1's home engine for the core layer, which must
// schedule a core's events (translations, submissions) on the core's own
// shard so parallel epochs stay legal.
func (s *System) EngineForL1(id int) *sim.Engine { return s.engineForL1(id) }

// ShardedEngine returns the sharded driver, or nil when the system runs on
// one sequential engine.
func (s *System) ShardedEngine() *sim.Sharded { return s.sh }

// ExecutedEvents returns the total executed events across all of the
// system's engines (plus driver-run globals when sharded) — the population
// the sequential engine's Executed counts.
func (s *System) ExecutedEvents() uint64 {
	if s.sh == nil {
		return s.Eng.Executed()
	}
	return s.sh.Executed()
}

// ParallelSafe reports whether parallel epochs may run: a sharded system
// with a routed (pure-latency) crossbar, the fast path disabled (it reads
// bank occupancy from the submitting core's shard), no fault injector
// (injectors mutate shared plan state per message), and no observation
// hooks (hooks see messages in delivery order, which mid-epoch is
// per-shard, not global). Everything else runs sequential-stepping —
// byte-identical by construction, just not concurrent.
func (s *System) ParallelSafe() bool {
	return s.sh != nil && s.routed && s.noFast && s.faults == nil &&
		s.Record == nil && s.Observe == nil && s.ObserveCPU == nil &&
		s.ObservePost == nil && s.ObserveCPUPost == nil && s.tracer == nil
}

// pendingAll reports queued events across the whole system.
func (s *System) pendingAll() int {
	if s.sh == nil {
		return s.Eng.Pending()
	}
	return s.sh.Pending()
}

// runWhile executes events in exact sequential order while cond holds.
func (s *System) runWhile(cond func() bool) {
	if s.sh == nil {
		s.Eng.RunWhile(cond)
		return
	}
	s.sh.StepWhile(cond)
}

// runTo executes events at or before t and advances every clock to t.
func (s *System) runTo(t sim.Cycle) {
	if s.sh == nil {
		s.Eng.RunTo(t)
		return
	}
	s.sh.StepTo(t)
}

// RunWhile executes events in exact sequential order while cond holds —
// the exported synchronous driver the core layer's probe paths use.
func (s *System) RunWhile(cond func() bool) { s.runWhile(cond) }

// RunTo executes events at or before t and advances every clock to t.
func (s *System) RunTo(t sim.Cycle) { s.runTo(t) }

// PendingAll reports queued events across the whole system.
func (s *System) PendingAll() int { return s.pendingAll() }

// ArmWatchdog arms the liveness watchdog: per-engine on one engine;
// per-shard plus a barrier-time global quiescence check when sharded, so a
// single wedged shard trips with every shard's pending dump.
func (s *System) ArmWatchdog(cfg sim.WatchdogConfig, trip func(sim.TripInfo)) {
	if s.sh != nil {
		s.sh.ArmWatchdog(cfg, trip)
		return
	}
	s.Eng.ArmWatchdog(cfg, trip)
}

// ArmCancel arms a cooperative cancellation token on every engine the
// system drives: once the token fires, the next executed event aborts the
// run through trip, which receives the same merged pending dump a
// watchdog trip would.
func (s *System) ArmCancel(c *sim.Cancel, trip func(sim.CancelInfo)) {
	if s.sh != nil {
		s.sh.ArmCancel(c, trip)
		return
	}
	s.Eng.ArmCancel(c, trip)
}

// sideUnpin is the DeferOp opcode for a deferred pin release (see unpin).
const sideUnpin uint8 = 1

// applySideOp replays deferred order-dependent shared-state operations in
// merge order — the sequential call sequence. Installed as the Sharded
// engine's OnReplayOp hook.
func (s *System) applySideOp(now sim.Cycle, a, b uint64, op uint8) {
	switch op {
	case sideUnpin:
		s.banks[b].unpinNow(cache.Addr(a))
	default:
		panic(fmt.Sprintf("coherence: unknown side op %d", op))
	}
}

// unpin releases one pin on addr at bank bk. Pins are taken by the bank
// (bank-local) but released when the pinned grant lands at the destination
// L1 — on the L1's shard when sharded. The release itself is
// fire-and-forget for the L1 but order-dependent for the bank (victim
// selection reads pin counts), so mid-epoch it defers to the barrier
// replay; banks only read pin counts at driver time (global install
// events, crash dumps), which runs after the replay.
func (s *System) unpin(e *sim.Engine, bk *bank, addr cache.Addr) {
	if e.InEpoch() {
		e.DeferOp(uint64(addr), uint64(bk.id), sideUnpin)
		return
	}
	bk.unpinNow(addr)
}

// Submit hands an access to port's L1. Completion is reported through
// a.Done and the system Record hook as the simulation advances.
func (s *System) Submit(port int, a Access) {
	s.L1s[port].Request(a)
}

// TryFastAccess attempts to complete a stable-state L1 hit synchronously:
// on success the array, LRU, and statistics have been updated exactly as
// the event path would have, and the returned latency is the one the event
// path would have reported — without a single event scheduled. The caller
// owns completion: it must account the latency (and invoke any callback)
// itself. Non-trivial cases — miss, transient state, upgrade that needs
// the directory, a busy or pinned bank, pre-charged translation latency, a
// Record hook, or a timing configuration in which a message issued this
// cycle could land inside the hit window — return ok=false, and the caller
// falls back to Submit.
func (s *System) TryFastAccess(port int, a Access) (AccessResult, bool) {
	if s.noFast || s.Record != nil || a.Extra != 0 {
		return AccessResult{}, false
	}
	if s.Timing.L1Tag >= s.Timing.Hop {
		// The crossbar's minimum delivery delay is Hop, so with
		// L1Tag < Hop nothing sent at or after submission time can reach
		// the L1 at or before the would-be completion time. Exotic
		// timing sweeps that violate this stay on the event path.
		return AccessResult{}, false
	}
	return s.L1s[port].tryFast(&a)
}

// sysOpFastDone is the System's only payload op: an AccessSync fast-path
// completion point.
const sysOpFastDone uint8 = 1

// Handle implements sim.Handler for the AccessSync fast path: the single
// completion event it schedules stands in for the event path's opL1Process
// at the same (cycle, seq), so engine stepping is byte-identical.
func (s *System) Handle(p sim.Payload) {
	if p.Op != sysOpFastDone {
		panic(fmt.Sprintf("coherence: system: unknown payload op %d", p.Op))
	}
	s.fpDone = true
}

// AccessSync submits an access and runs the engine until it completes,
// returning the result. It is the probe interface the attack framework
// and the protocol tests use.
func (s *System) AccessSync(port int, addr cache.Addr, write bool, wp bool, value uint64) AccessResult {
	if r, ok := s.TryFastAccess(port, Access{Addr: addr, Write: write, WP: wp, Value: value}); ok {
		if s.pendingAll() == 0 {
			// Nothing else in flight: skip the event engine entirely and
			// advance the clock to the completion time.
			s.runTo(s.Eng.Now() + r.Latency)
			return r
		}
		// In-flight background work (writeback tails, queued wakeups):
		// schedule one completion event where the event path would have
		// scheduled its tag-lookup event, so the engine stops at exactly
		// the same point.
		s.fpDone = false
		if s.fpCond == nil {
			s.fpCond = func() bool { return !s.fpDone }
		}
		s.Eng.ScheduleEvent(r.Latency, s, sim.Payload{Op: sysOpFastDone})
		s.runWhile(s.fpCond)
		return r
	}
	var out AccessResult
	done := false
	s.Submit(port, Access{
		Addr: addr, Write: write, WP: wp, Value: value,
		Done: func(r AccessResult) { out = r; done = true },
	})
	s.runWhile(func() bool { return !done })
	if !done {
		panic("coherence: access did not complete (event queue drained)")
	}
	return out
}

// Quiesce drains all in-flight activity. On a sharded system it runs
// parallel epochs when ParallelSafe, falling back to sequential stepping
// otherwise — both byte-identical to the one-engine drain.
func (s *System) Quiesce() {
	if s.sh == nil {
		s.Eng.Run()
		return
	}
	if s.ParallelSafe() {
		s.sh.Run()
		return
	}
	s.sh.StepWhile(func() bool { return true })
}

// FastPathTotals sums the fast/slow access split over all L1 controllers.
func (s *System) FastPathTotals() (fast, slow uint64) {
	for _, l1 := range s.L1s {
		fast += l1.Stats.FastHits
		slow += l1.Stats.SlowPath
	}
	return fast, slow
}

// BankStatsTotal sums statistics over all banks.
func (s *System) BankStatsTotal() BankStats {
	var t BankStats
	for _, b := range s.banks {
		t.Requests += b.Stats.Requests
		t.LLCServed += b.Stats.LLCServed
		t.Forwards += b.Stats.Forwards
		t.MemFetches += b.Stats.MemFetches
		t.Invals += b.Stats.Invals
		t.UpgradeAcks += b.Stats.UpgradeAcks
		t.Recalls += b.Stats.Recalls
		t.Writebacks += b.Stats.Writebacks
		t.QueuedWakeups += b.Stats.QueuedWakeups
	}
	return t
}

// ArbPromotions sums, over all banks, the queued requests the arbiter
// inserted ahead of at least one earlier arrival. Always 0 unless the
// policy implements Arbiter.
func (s *System) ArbPromotions() uint64 {
	var n uint64
	for _, b := range s.banks {
		n += b.arbPromotions
	}
	return n
}

// DirStateOf reports the directory state of a block (DirInvalid if not
// resident). For tests and invariant checks.
func (s *System) DirStateOf(addr cache.Addr) DirState {
	b := s.bankFor(addr)
	if e, ok := b.entries[addr]; ok {
		return e.state
	}
	return DirInvalid
}

// L1StateOf reports port's L1 line state for a block.
func (s *System) L1StateOf(port int, addr cache.Addr) cache.LineState {
	if ln := s.L1s[port].Array().Lookup(addr); ln != nil {
		return ln.State
	}
	return cache.Invalid
}

// CheckInvariants validates the quiesced system:
//
//   - SWMR: at most one L1 holds a block E/M, and then no L1 holds it S;
//   - inclusion: every L1-resident block is LLC-resident;
//   - directory agreement: owner/sharer records match L1 contents;
//   - WP-never-exclusive: under SwiftDir a write-protected line is never
//     E or M in any L1 (the security property, structurally).
//
// It must be called with no in-flight transactions and returns the first
// violation found.
func (s *System) CheckInvariants() error {
	for _, b := range s.banks {
		if len(b.busy) != 0 {
			return fmt.Errorf("bank %d: %d transactions still busy", b.id, len(b.busy))
		}
	}
	for _, l1 := range s.L1s {
		if n := l1.OutstandingMisses(); n != 0 {
			return fmt.Errorf("L1 %d: %d MSHRs still outstanding", l1.ID, n)
		}
	}

	type holders struct {
		exclusive []int
		owned     []int
		forward   []int
		shared    []int
	}
	byBlock := make(map[cache.Addr]*holders)
	for _, l1 := range s.L1s {
		id := l1.ID
		var err error
		l1.Array().ForEachValid(func(addr cache.Addr, ln *cache.Line) {
			h := byBlock[addr]
			if h == nil {
				h = &holders{}
				byBlock[addr] = h
			}
			switch ln.State {
			case cache.Exclusive, cache.Modified:
				h.exclusive = append(h.exclusive, id)
			case cache.Owned:
				h.owned = append(h.owned, id)
			case cache.Forward:
				h.forward = append(h.forward, id)
			case cache.Shared:
				h.shared = append(h.shared, id)
			}
			if (s.Policy == SwiftDir || s.Policy == SwiftDirMOESI) && ln.WP && ln.State != cache.Shared {
				err = fmt.Errorf("L1 %d: write-protected block %#x in state %v under %s",
					id, addr, ln.State, s.Policy.Name())
			}
			// Inclusion.
			if _, ok := s.bankFor(addr).entries[addr]; !ok {
				err = fmt.Errorf("L1 %d: block %#x resident but absent from LLC (inclusion)", id, addr)
			}
		})
		if err != nil {
			return err
		}
	}
	for addr, h := range byBlock {
		if len(h.exclusive) > 1 {
			return fmt.Errorf("SWMR: block %#x exclusive in L1s %v", addr, h.exclusive)
		}
		if len(h.exclusive) == 1 && (len(h.shared) > 0 || len(h.owned) > 0 || len(h.forward) > 0) {
			return fmt.Errorf("SWMR: block %#x exclusive in L1 %d alongside O=%v F=%v S=%v",
				addr, h.exclusive[0], h.owned, h.forward, h.shared)
		}
		// MOESI: at most one Owned holder; O may coexist with S only.
		if len(h.owned) > 1 {
			return fmt.Errorf("SWMR: block %#x owned by multiple L1s %v", addr, h.owned)
		}
		// MESIF: at most one Forward holder; F coexists with S only.
		if len(h.forward) > 1 {
			return fmt.Errorf("SWMR: block %#x forwarded by multiple L1s %v", addr, h.forward)
		}
		if len(h.forward) > 0 && len(h.owned) > 0 {
			return fmt.Errorf("SWMR: block %#x has both O=%v and F=%v holders", addr, h.owned, h.forward)
		}
	}
	// Two-level agreement: hubs quiesced, and the hub records are exact —
	// every L1-resident block has its local bit set and every set bit maps
	// to a valid line.
	if s.twoLevel {
		for _, h := range s.hubs {
			if len(h.pending) != 0 {
				return fmt.Errorf("hub %d: %d invalidation aggregations still pending", h.id, len(h.pending))
			}
			if len(h.upReqs) != 0 {
				return fmt.Errorf("hub %d: %d up-requests still awaiting grants", h.id, len(h.upReqs))
			}
		}
		for _, l1 := range s.L1s {
			c := s.clusterOf(l1.ID)
			lid := uint(l1.ID - c*s.localsPer)
			var err error
			l1.Array().ForEachValid(func(addr cache.Addr, ln *cache.Line) {
				if s.hubs[c].record[addr]&(1<<lid) == 0 {
					err = fmt.Errorf("hub %d: L1 %d holds %#x but its record bit is clear", c, l1.ID, addr)
				}
			})
			if err != nil {
				return err
			}
		}
		for _, h := range s.hubs {
			for addr, rec := range h.record {
				for lid := 0; rec != 0; lid++ {
					if rec&1 != 0 {
						id := h.id*s.localsPer + lid
						if st := s.L1StateOf(id, addr); st == cache.Invalid {
							return fmt.Errorf("hub %d: record bit for L1 %d on %#x but the line is invalid", h.id, id, addr)
						}
					}
					rec >>= 1
				}
			}
		}
	}
	// Directory agreement.
	for _, b := range s.banks {
		for addr, e := range b.entries {
			switch e.state {
			case DirExclusive, DirModifiedL1:
				st := s.L1StateOf(e.owner, addr)
				if st != cache.Exclusive && st != cache.Modified {
					return fmt.Errorf("dir: block %#x %v owner %d holds %v", addr, e.state, e.owner, st)
				}
			case DirShared:
				if s.twoLevel {
					// Sharer bits are clusters: each set bit must map to a
					// nonempty hub record whose locals all hold S.
					for c, sh := 0, e.sharers; sh != 0; c++ {
						if sh&1 != 0 {
							rec := s.hubs[c].record[addr]
							if rec == 0 {
								return fmt.Errorf("dir: block %#x sharer cluster %d has an empty hub record", addr, c)
							}
							for lid := 0; rec != 0; lid++ {
								if rec&1 != 0 {
									id := c*s.localsPer + lid
									if st := s.L1StateOf(id, addr); st != cache.Shared {
										return fmt.Errorf("dir: block %#x cluster %d local %d holds %v", addr, c, id, st)
									}
								}
								rec >>= 1
							}
						}
						sh >>= 1
					}
					break
				}
				for id, sh := 0, e.sharers; sh != 0; id++ {
					if sh&1 != 0 {
						st := s.L1StateOf(id, addr)
						if st != cache.Shared && st != cache.Forward {
							return fmt.Errorf("dir: block %#x sharer %d holds %v", addr, id, st)
						}
						if st == cache.Forward && e.forwarder != id {
							return fmt.Errorf("dir: block %#x F holder %d not recorded (forwarder=%d)", addr, id, e.forwarder)
						}
					}
					sh >>= 1
				}
				if e.forwarder >= 0 {
					if st := s.L1StateOf(e.forwarder, addr); st != cache.Forward {
						return fmt.Errorf("dir: block %#x forwarder %d holds %v", addr, e.forwarder, st)
					}
				}
			case DirOwned:
				if st := s.L1StateOf(e.owner, addr); st != cache.Owned {
					return fmt.Errorf("dir: block %#x DirO owner %d holds %v", addr, e.owner, st)
				}
				for id, sh := 0, e.sharers; sh != 0; id++ {
					if sh&1 != 0 {
						if st := s.L1StateOf(id, addr); st != cache.Shared {
							return fmt.Errorf("dir: block %#x DirO sharer %d holds %v", addr, id, st)
						}
					}
					sh >>= 1
				}
			case DirPresent:
				h := byBlock[addr]
				if h != nil && (len(h.exclusive) > 0 || len(h.shared) > 0) {
					return fmt.Errorf("dir: block %#x DirPresent but cached in L1s", addr)
				}
			}
		}
	}
	return nil
}
