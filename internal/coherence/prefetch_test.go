package coherence

import (
	"testing"

	"repro/internal/cache"
)

func prefetchSystem(t *testing.T, p Policy, mode PrefetchMode, cores int) *System {
	t.Helper()
	cfg := testConfig(p, cores)
	cfg.Prefetch = mode
	return MustNewSystem(cfg)
}

func TestPrefetchFillsNextLine(t *testing.T) {
	s := prefetchSystem(t, MESI, PrefetchWPAware, 1)
	s.AccessSync(0, blockA, false, false, 0)
	s.Quiesce()
	if st := s.L1StateOf(0, blockA+64); st == cache.Invalid {
		t.Fatal("next line not prefetched")
	}
	if s.L1s[0].Stats.Prefetches != 1 {
		t.Fatalf("prefetches = %d", s.L1s[0].Stats.Prefetches)
	}
	// The prefetched line hits.
	r := s.AccessSync(0, blockA+64, false, false, 0)
	if r.Served != ServedL1 {
		t.Fatalf("prefetched line served from %v", r.Served)
	}
	quiesceAndCheck(t, s)
}

func TestPrefetchStopsAtPageBoundary(t *testing.T) {
	s := prefetchSystem(t, MESI, PrefetchWPAware, 1)
	lastBlock := cache.Addr(0x10FC0) // last block of page 0x10000
	s.AccessSync(0, lastBlock, false, false, 0)
	s.Quiesce()
	if st := s.L1StateOf(0, 0x11000); st != cache.Invalid {
		t.Fatal("prefetch crossed a page boundary")
	}
	if s.L1s[0].Stats.Prefetches != 0 {
		t.Fatal("boundary prefetch counted")
	}
}

// The hazard: a naive prefetcher drops the WP bit, so SwiftDir grants E
// for the prefetched write-protected line and the channel reopens on it.
func TestNaivePrefetchReopensChannel(t *testing.T) {
	tm := DefaultTiming()
	s := prefetchSystem(t, SwiftDir, PrefetchNaive, 2)
	// Sender touches blockA with WP: demand line -> S, prefetched
	// blockA+64 -> E (bit dropped).
	s.AccessSync(1, blockA, false, true, 0)
	s.Quiesce()
	if st := s.L1StateOf(1, blockA+64); st != cache.Exclusive {
		t.Fatalf("naive-prefetched WP line state %v, want E (the hazard)", st)
	}
	// The receiver's probe of the prefetched line is the slow three-hop
	// path: distinguishable from the 17-cycle S service = channel.
	r := s.AccessSync(0, blockA+64, false, true, 0)
	if r.Latency != tm.RemoteLoadLatency() {
		t.Fatalf("probe latency %d, want %d (remote)", r.Latency, tm.RemoteLoadLatency())
	}
	quiesceAndCheck(t, s)
}

// The WP-aware prefetcher preserves the defense: prefetched WP lines are
// Shared and every probe is the constant LLC latency.
func TestWPAwarePrefetchKeepsChannelClosed(t *testing.T) {
	tm := DefaultTiming()
	s := prefetchSystem(t, SwiftDir, PrefetchWPAware, 2)
	s.AccessSync(1, blockA, false, true, 0)
	s.Quiesce()
	if st := s.L1StateOf(1, blockA+64); st != cache.Shared {
		t.Fatalf("prefetched WP line state %v, want S", st)
	}
	r := s.AccessSync(0, blockA+64, false, true, 0)
	if r.Latency != tm.LLCLoadLatency() {
		t.Fatalf("probe latency %d, want constant %d", r.Latency, tm.LLCLoadLatency())
	}
	quiesceAndCheck(t, s)
}

// Prefetch MSHRs merge with demand accesses (hit-under-prefetch).
func TestDemandMergesIntoPrefetch(t *testing.T) {
	s := prefetchSystem(t, MESI, PrefetchWPAware, 1)
	done := 0
	s.Submit(0, Access{Addr: blockA, Done: func(AccessResult) { done++ }})
	// Immediately access the line being prefetched.
	s.Submit(0, Access{Addr: blockA + 64, Done: func(AccessResult) { done++ }})
	s.Quiesce()
	if done != 2 {
		t.Fatalf("completions = %d", done)
	}
	// Exactly two memory fetches (demand + prefetch), not three.
	if got := s.BankStatsTotal().MemFetches; got != 2 {
		t.Fatalf("mem fetches = %d, want 2", got)
	}
	quiesceAndCheck(t, s)
}

// Prefetching must preserve all invariants under concurrent stress.
func TestPrefetchStress(t *testing.T) {
	for _, mode := range []PrefetchMode{PrefetchNaive, PrefetchWPAware} {
		for _, p := range []Policy{MESI, SwiftDir, SMESI, MOESI, MESIF} {
			cfg := testConfig(p, 4)
			cfg.Prefetch = mode
			cfg.LLCParams = cache.Params{Name: "LLC", SizeBytes: 4 << 10, Ways: 4, BlockSize: 64}
			s := MustNewSystem(cfg)
			for i := 0; i < 800; i++ {
				s.Submit(i%4, Access{
					Addr:  cache.Addr(0x100000 + (i%40)*64),
					Write: i%5 == 0,
					WP:    i%3 == 0 && i%5 != 0,
					Value: uint64(i),
				})
			}
			s.Eng.RunBounded(50_000_000)
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("%s/%v: %v", p.Name(), mode, err)
			}
		}
	}
}

func TestPrefetchModeStrings(t *testing.T) {
	if PrefetchOff.String() != "off" || PrefetchNaive.String() != "naive" || PrefetchWPAware.String() != "wp-aware" {
		t.Fatal("names wrong")
	}
}
