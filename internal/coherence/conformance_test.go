package coherence

import (
	"testing"

	"repro/internal/cache"
)

// Protocol conformance: a table-driven specification of the stable-state
// transitions each protocol must produce for canonical scenarios. Each
// scenario is a sequence of (core, op) steps; the expectation pins the
// final L1 states, the directory state, and the full message-kind
// sequence. This is the executable analogue of a Ruby/SLICC protocol
// table.

type step struct {
	core  int
	write bool
	wp    bool
	value uint64
}

type conformanceCase struct {
	name     string
	policy   Policy
	steps    []step
	l1States map[int]cache.LineState // final, per core
	dirState DirState
	msgs     string // full message sequence over all steps
}

func conformanceTable() []conformanceCase {
	ld := func(core int, wp bool) step { return step{core: core, wp: wp} }
	st := func(core int, v uint64) step { return step{core: core, write: true, value: v} }

	return []conformanceCase{
		// --- MESI ---
		{
			name: "MESI cold load", policy: MESI,
			steps:    []step{ld(0, false)},
			l1States: map[int]cache.LineState{0: cache.Exclusive},
			dirState: DirExclusive,
			msgs:     "GETS Data_Exclusive Exclusive_Unblock",
		},
		{
			name: "MESI read-read", policy: MESI,
			steps:    []step{ld(0, false), ld(1, false)},
			l1States: map[int]cache.LineState{0: cache.Shared, 1: cache.Shared},
			dirState: DirShared,
			msgs: "GETS Data_Exclusive Exclusive_Unblock " +
				"GETS Fwd_GETS Data_From_Owner WB_Data Unblock",
		},
		{
			name: "MESI read-write same core", policy: MESI,
			steps:    []step{ld(0, false), st(0, 1)},
			l1States: map[int]cache.LineState{0: cache.Modified},
			dirState: DirExclusive, // the silent upgrade is invisible to the directory
			msgs:     "GETS Data_Exclusive Exclusive_Unblock",
		},
		{
			name: "MESI write-write cross core", policy: MESI,
			steps:    []step{st(0, 1), st(1, 2)},
			l1States: map[int]cache.LineState{0: cache.Invalid, 1: cache.Modified},
			dirState: DirModifiedL1,
			msgs: "GETX Data_Exclusive Exclusive_Unblock " +
				"GETX Fwd_GETX Data_From_Owner Exclusive_Unblock",
		},
		{
			name: "MESI read-read-write", policy: MESI,
			steps:    []step{ld(0, false), ld(1, false), st(0, 3)},
			l1States: map[int]cache.LineState{0: cache.Modified, 1: cache.Invalid},
			dirState: DirModifiedL1,
			msgs: "GETS Data_Exclusive Exclusive_Unblock " +
				"GETS Fwd_GETS Data_From_Owner WB_Data Unblock " +
				"Upgrade Inv Inv_Ack Upgrade_ACK",
		},

		// --- SwiftDir ---
		{
			name: "SwiftDir cold WP load", policy: SwiftDir,
			steps:    []step{ld(0, true)},
			l1States: map[int]cache.LineState{0: cache.Shared},
			dirState: DirShared,
			msgs:     "GETS_WP Data Unblock",
		},
		{
			name: "SwiftDir WP read-read", policy: SwiftDir,
			steps:    []step{ld(0, true), ld(1, true)},
			l1States: map[int]cache.LineState{0: cache.Shared, 1: cache.Shared},
			dirState: DirShared,
			msgs:     "GETS_WP Data Unblock GETS_WP Data Unblock",
		},
		{
			name: "SwiftDir non-WP unchanged from MESI", policy: SwiftDir,
			steps:    []step{ld(0, false), st(0, 1)},
			l1States: map[int]cache.LineState{0: cache.Modified},
			dirState: DirExclusive,
			msgs:     "GETS Data_Exclusive Exclusive_Unblock",
		},
		{
			name: "SwiftDir mixed WP then non-WP writer", policy: SwiftDir,
			steps:    []step{ld(0, true), ld(1, true), st(1, 9)},
			l1States: map[int]cache.LineState{0: cache.Invalid, 1: cache.Modified},
			dirState: DirModifiedL1,
			msgs: "GETS_WP Data Unblock GETS_WP Data Unblock " +
				"Upgrade Inv Inv_Ack Upgrade_ACK",
		},

		// --- S-MESI ---
		{
			name: "S-MESI explicit E->M", policy: SMESI,
			steps:    []step{ld(0, false), st(0, 1)},
			l1States: map[int]cache.LineState{0: cache.Modified},
			dirState: DirModifiedL1, // synchronized, unlike MESI
			msgs:     "GETS Data_Exclusive Exclusive_Unblock Upgrade Upgrade_ACK",
		},
		{
			name: "S-MESI serves E from LLC", policy: SMESI,
			steps:    []step{ld(0, false), ld(1, false)},
			l1States: map[int]cache.LineState{0: cache.Shared, 1: cache.Shared},
			dirState: DirShared,
			msgs: "GETS Data_Exclusive Exclusive_Unblock " +
				"GETS Data Downgrade Unblock",
		},

		// --- E_wp ablation ---
		{
			name: "Ewp WP load keeps E", policy: SwiftDirEwp,
			steps:    []step{ld(0, true)},
			l1States: map[int]cache.LineState{0: cache.Exclusive},
			dirState: DirExclusive,
			msgs:     "GETS_WP Data_Exclusive Exclusive_Unblock",
		},
		{
			name: "Ewp remote WP load from LLC", policy: SwiftDirEwp,
			steps:    []step{ld(0, true), ld(1, true)},
			l1States: map[int]cache.LineState{0: cache.Shared, 1: cache.Shared},
			dirState: DirShared,
			msgs: "GETS_WP Data_Exclusive Exclusive_Unblock " +
				"GETS_WP Data Downgrade Unblock",
		},

		// --- MOESI ---
		{
			name: "MOESI dirty sharing via O", policy: MOESI,
			steps:    []step{ld(0, false), st(0, 7), ld(1, false)},
			l1States: map[int]cache.LineState{0: cache.Owned, 1: cache.Shared},
			dirState: DirOwned,
			msgs: "GETS Data_Exclusive Exclusive_Unblock " +
				"GETS Fwd_GETS Data_From_Owner WB_Data Unblock",
		},
		{
			name: "MOESI owner re-upgrade", policy: MOESI,
			steps:    []step{ld(0, false), st(0, 7), ld(1, false), st(0, 8)},
			l1States: map[int]cache.LineState{0: cache.Modified, 1: cache.Invalid},
			dirState: DirModifiedL1,
			msgs: "GETS Data_Exclusive Exclusive_Unblock " +
				"GETS Fwd_GETS Data_From_Owner WB_Data Unblock " +
				"Upgrade Inv Inv_Ack Upgrade_ACK",
		},
		// --- MESIF ---
		{
			name: "MESIF forward chain", policy: MESIF,
			steps:    []step{ld(0, false), ld(1, false), ld(2, false)},
			l1States: map[int]cache.LineState{0: cache.Shared, 1: cache.Shared, 2: cache.Forward},
			dirState: DirShared,
			msgs: "GETS Data_Exclusive Exclusive_Unblock " +
				"GETS Fwd_GETS Data_From_Owner WB_Data Unblock " +
				"GETS Fwd_GETS Data_From_Owner WB_Data Unblock",
		},
		{
			name: "SwiftDir-MESIF WP never forwards", policy: SwiftDirMESIF,
			steps:    []step{ld(0, true), ld(1, true), ld(2, true)},
			l1States: map[int]cache.LineState{0: cache.Shared, 1: cache.Shared, 2: cache.Shared},
			dirState: DirShared,
			msgs:     "GETS_WP Data Unblock GETS_WP Data Unblock GETS_WP Data Unblock",
		},
		{
			name: "SwiftDir-MOESI WP pinned to S", policy: SwiftDirMOESI,
			steps:    []step{ld(0, true), ld(1, true)},
			l1States: map[int]cache.LineState{0: cache.Shared, 1: cache.Shared},
			dirState: DirShared,
			msgs:     "GETS_WP Data Unblock GETS_WP Data Unblock",
		},

		// --- MSI ---
		{
			name: "MSI cold load installs Shared", policy: MSI,
			steps:    []step{ld(0, false)},
			l1States: map[int]cache.LineState{0: cache.Shared},
			dirState: DirShared,
			msgs:     "GETS Data Unblock",
		},
		{
			name: "MSI store pays Upgrade", policy: MSI,
			steps:    []step{ld(0, false), st(0, 1)},
			l1States: map[int]cache.LineState{0: cache.Modified},
			dirState: DirModifiedL1,
			msgs:     "GETS Data Unblock Upgrade Upgrade_ACK",
		},
		{
			name: "MSI store miss takes GETX", policy: MSI,
			steps:    []step{st(0, 1)},
			l1States: map[int]cache.LineState{0: cache.Modified},
			dirState: DirModifiedL1,
			msgs:     "GETX Data_Exclusive Exclusive_Unblock",
		},
		{
			name: "MSI readers all LLC-served", policy: MSI,
			steps:    []step{ld(0, false), ld(1, false), ld(2, false)},
			l1States: map[int]cache.LineState{0: cache.Shared, 1: cache.Shared, 2: cache.Shared},
			dirState: DirShared,
			msgs:     "GETS Data Unblock GETS Data Unblock GETS Data Unblock",
		},
	}
}

func TestProtocolConformance(t *testing.T) {
	for _, c := range conformanceTable() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			s := newTestSystem(t, c.policy, 3)
			tr := s.AttachTracer()
			for _, st := range c.steps {
				s.AccessSync(st.core, blockA, st.write, st.wp, st.value)
				s.Quiesce()
			}
			if got := tr.KindSeq(); got != c.msgs {
				t.Errorf("messages:\n got  %q\n want %q", got, c.msgs)
			}
			for core, want := range c.l1States {
				if got := s.L1StateOf(core, blockA); got != want {
					t.Errorf("L1(%d) state = %v, want %v", core, got, want)
				}
			}
			if got := s.DirStateOf(blockA); got != c.dirState {
				t.Errorf("dir state = %v, want %v", got, c.dirState)
			}
			if err := s.CheckInvariants(); err != nil {
				t.Error(err)
			}
		})
	}
}
