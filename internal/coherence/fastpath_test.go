package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/sim"
)

// Fast-path tests: TryFastAccess must fire exactly on stable-state L1
// hits, decline every hazardous case, and — with the NoFastPath knob —
// be statistically indistinguishable from the event path.

// warmTo installs addr in port's L1, optionally drives it to M, and
// quiesces: AccessSync returns at the Done callback, which can leave
// directory-side cleanup events pending and the home bank still busy —
// a state the fast path conservatively declines.
func warmTo(s *System, port int, addr cache.Addr, modified bool) {
	s.AccessSync(port, addr, false, false, 0)
	if modified {
		s.AccessSync(port, addr, true, false, uint64(addr))
	}
	s.Eng.Run()
}

func TestFastPathHitLoadAndStore(t *testing.T) {
	s := MustNewSystem(testConfig(MESI, 2))
	warmTo(s, 0, blockA, true)
	base := s.L1s[0].Stats

	r, ok := s.TryFastAccess(0, Access{Addr: blockA})
	if !ok {
		t.Fatal("fast load of an M-state line declined")
	}
	if want := s.Timing.L1Tag; r.Latency != want {
		t.Fatalf("fast hit latency = %d, want L1Tag = %d", r.Latency, want)
	}
	if r.Value != uint64(blockA) || r.Served != ServedL1 {
		t.Fatalf("fast load returned value %#x served %v", r.Value, r.Served)
	}

	r, ok = s.TryFastAccess(0, Access{Addr: blockA, Write: true, Value: 7})
	if !ok {
		t.Fatal("fast store to an M-state line declined")
	}
	if r.Latency != s.Timing.L1Tag || r.Value != 7 {
		t.Fatalf("fast store result = %+v", r)
	}
	st := s.L1s[0].Stats
	if got := s.AccessSync(0, blockA, false, false, 0); got.Value != 7 {
		t.Fatalf("store not visible: loaded %#x, want 7", got.Value)
	}
	if st.FastHits != base.FastHits+2 {
		t.Fatalf("FastHits = %d, want %d", st.FastHits, base.FastHits+2)
	}
	if st.Loads != base.Loads+1 || st.Stores != base.Stores+1 ||
		st.LoadHits != base.LoadHits+1 || st.StoreHits != base.StoreHits+1 {
		t.Fatalf("load/store counters diverged: %+v vs base %+v", st, base)
	}
}

func TestFastPathSilentUpgrade(t *testing.T) {
	// A store hitting E must fast-path only under policies that upgrade
	// silently; S-MESI notifies the LLC (the EM^A round trip, §III) and
	// must take the event path.
	for _, tc := range []struct {
		p    Policy
		want bool
	}{{MESI, true}, {SwiftDir, true}, {SMESI, false}} {
		s := MustNewSystem(testConfig(tc.p, 2))
		warmTo(s, 0, blockA, false)
		if st := s.L1StateOf(0, blockA); st != cache.Exclusive {
			t.Fatalf("%s: warm load left state %v, want E", tc.p.Name(), st)
		}
		_, ok := s.TryFastAccess(0, Access{Addr: blockA, Write: true, Value: 1})
		if ok != tc.want {
			t.Errorf("%s: fast store to E accepted=%v, want %v", tc.p.Name(), ok, tc.want)
		}
		if tc.want {
			if st := s.L1StateOf(0, blockA); st != cache.Modified {
				t.Errorf("%s: silent fast upgrade left state %v, want M", tc.p.Name(), st)
			}
			if s.L1s[0].Stats.SilentUpgrades != 1 {
				t.Errorf("%s: SilentUpgrades = %d, want 1", tc.p.Name(), s.L1s[0].Stats.SilentUpgrades)
			}
		}
	}
}

func TestFastPathDeclines(t *testing.T) {
	mk := func(mut func(*SystemConfig)) *System {
		cfg := testConfig(MESI, 2)
		if mut != nil {
			mut(&cfg)
		}
		return MustNewSystem(cfg)
	}

	t.Run("not resident", func(t *testing.T) {
		s := mk(nil)
		if _, ok := s.TryFastAccess(0, Access{Addr: blockA}); ok {
			t.Fatal("fast path hit a line that was never installed")
		}
	})

	t.Run("store to shared", func(t *testing.T) {
		s := mk(nil)
		warmTo(s, 0, blockA, false)
		s.AccessSync(1, blockA, false, false, 0) // both S now
		s.Eng.Run()
		if _, ok := s.TryFastAccess(0, Access{Addr: blockA, Write: true, Value: 1}); ok {
			t.Fatal("fast store to an S-state line must take the Upgrade round trip")
		}
	})

	t.Run("knob off", func(t *testing.T) {
		s := mk(func(c *SystemConfig) { c.NoFastPath = true })
		warmTo(s, 0, blockA, true)
		if _, ok := s.TryFastAccess(0, Access{Addr: blockA}); ok {
			t.Fatal("fast path fired with NoFastPath set")
		}
	})

	t.Run("record hook", func(t *testing.T) {
		s := mk(nil)
		warmTo(s, 0, blockA, true)
		s.Record = func(int, AccessResult) {}
		if _, ok := s.TryFastAccess(0, Access{Addr: blockA}); ok {
			t.Fatal("fast path fired with a Record hook installed")
		}
	})

	t.Run("extra latency", func(t *testing.T) {
		s := mk(nil)
		warmTo(s, 0, blockA, true)
		if _, ok := s.TryFastAccess(0, Access{Addr: blockA, Extra: 1}); ok {
			t.Fatal("fast path fired on an access with deferred-translation Extra")
		}
	})

	t.Run("slow tag", func(t *testing.T) {
		// L1Tag >= Hop voids the no-delivery-in-window argument; the
		// whole system must decline.
		s := mk(func(c *SystemConfig) { c.Timing.L1Tag = c.Timing.Hop })
		warmTo(s, 0, blockA, true)
		if _, ok := s.TryFastAccess(0, Access{Addr: blockA}); ok {
			t.Fatal("fast path fired with L1Tag >= Hop")
		}
	})
}

// TestFastPathMidUpgradeWAR is the fast/event interleaving litmus: while
// port 0's store to a shared line is mid-upgrade, reads must serialize
// correctly around the write (the paper's §III write-after-read concern).
//   - The writer's own L1 declines (MSHR in flight): its later accesses
//     stay ordered behind the store.
//   - A sharer may still fast-hit the line *before* the directory starts
//     the upgrade — that read is globally ordered before the write and
//     must see the old value.
//   - Once the home bank owns the transaction, the sharer declines too;
//     after the invalidation it re-fetches and must see the new value.
func TestFastPathMidUpgradeWAR(t *testing.T) {
	s := MustNewSystem(testConfig(MESI, 2))
	const old, new_ = uint64(0xAA), uint64(0xBB)
	warmTo(s, 0, blockA, true)
	s.AccessSync(0, blockA, true, false, old)
	s.AccessSync(1, blockA, false, false, 0) // port 1 joins as sharer
	s.Eng.Run()
	if st := s.L1StateOf(1, blockA); st != cache.Shared {
		t.Fatalf("setup: port 1 state %v, want S", st)
	}

	storeDone := false
	s.Submit(0, Access{Addr: blockA, Write: true, Value: new_,
		Done: func(AccessResult) { storeDone = true }})
	s.Eng.RunFor(s.Timing.L1Tag + 1) // tag lookup done, Upgrade in the crossbar

	if _, ok := s.TryFastAccess(0, Access{Addr: blockA}); ok {
		t.Fatal("writer's L1 fast-pathed a load behind its own in-flight store")
	}
	r, ok := s.TryFastAccess(1, Access{Addr: blockA})
	if !ok {
		t.Fatal("sharer load declined before the home bank saw the upgrade")
	}
	if r.Value != old {
		t.Fatalf("pre-serialization read saw %#x, want old value %#x", r.Value, old)
	}

	// Advance until the home bank owns the transaction: the sharer must
	// now decline (its read can no longer be ordered before the write).
	b := s.bankFor(blockA)
	for len(b.busy) == 0 && b.pinned[s.L1s[0].arr.BlockAddr(blockA)] == 0 {
		if s.Eng.Pending() == 0 {
			t.Fatal("engine drained before the bank processed the upgrade")
		}
		s.Eng.RunFor(1)
	}
	if !storeDone {
		if _, ok := s.TryFastAccess(1, Access{Addr: blockA}); ok {
			t.Fatal("sharer fast-pathed a read while the home bank owned the upgrade")
		}
	}

	s.Eng.Run()
	if !storeDone {
		t.Fatal("store never completed")
	}
	if st := s.L1StateOf(1, blockA); st != cache.Invalid {
		t.Fatalf("sharer kept state %v after upgrade, want I", st)
	}
	if _, ok := s.TryFastAccess(1, Access{Addr: blockA}); ok {
		t.Fatal("sharer fast-hit an invalidated line")
	}
	if got := s.AccessSync(1, blockA, false, false, 0); got.Value != new_ {
		t.Fatalf("post-upgrade read saw %#x, want %#x", got.Value, new_)
	}
	s.Eng.Run()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFastPathRandomEquivalence drives the same random synchronous access
// sequence through a fast-path system and a NoFastPath twin and demands
// byte-identical results: every AccessResult, every statistic except the
// FastHits/SlowPath split, and the final simulated clock.
func TestFastPathRandomEquivalence(t *testing.T) {
	for _, p := range Policies {
		t.Run(p.Name(), func(t *testing.T) {
			fast := MustNewSystem(testConfig(p, 4))
			slow := MustNewSystem(func() SystemConfig {
				c := testConfig(p, 4)
				c.NoFastPath = true
				return c
			}())

			rng := sim.NewRNG(0xFA57 ^ uint64(len(p.Name())))
			// 8 blocks spanning both banks, far fewer than the 16-block
			// L1, so hits dominate but evictions and sharing still occur.
			addrs := make([]cache.Addr, 8)
			for i := range addrs {
				addrs[i] = blockA + cache.Addr(i*64)
			}
			for i := 0; i < 4000; i++ {
				port := int(rng.Uint64() % 4)
				addr := addrs[rng.Uint64()%uint64(len(addrs))]
				write := rng.Bool(0.3)
				value := rng.Uint64()
				rf := fast.AccessSync(port, addr, write, false, value)
				rs := slow.AccessSync(port, addr, write, false, value)
				if rf != rs {
					t.Fatalf("op %d (port %d addr %#x write %v): fast %+v != slow %+v",
						i, port, addr, write, rf, rs)
				}
			}
			fast.Quiesce()
			slow.Quiesce()
			if fast.Eng.Now() != slow.Eng.Now() {
				t.Fatalf("clocks diverged: fast %d, slow %d", fast.Eng.Now(), slow.Eng.Now())
			}
			var fastHits uint64
			for i := range fast.L1s {
				fs, ss := fast.L1s[i].Stats, slow.L1s[i].Stats
				fastHits += fs.FastHits
				fs.FastHits, fs.SlowPath = 0, 0
				ss.FastHits, ss.SlowPath = 0, 0
				if fs != ss {
					t.Fatalf("L1 %d stats diverged:\nfast %+v\nslow %+v", i, fs, ss)
				}
			}
			if fastHits == 0 {
				t.Fatal("equivalence run never exercised the fast path")
			}
			if fb, sb := fast.BankStatsTotal(), slow.BankStatsTotal(); fb != sb {
				t.Fatalf("bank stats diverged:\nfast %+v\nslow %+v", fb, sb)
			}
			if err := fast.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if err := slow.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
