// Package coherence implements the two-level directory-based cache
// coherence protocols the paper studies: the MESI baseline, the S-MESI
// defense (Yao et al.), and SwiftDir. One shared state-machine
// implementation — a per-core L1 controller and a banked LLC/directory
// controller — is specialized by a small Policy interface that captures
// exactly the three behavioural differences of Table IV:
//
//   - whether a store to an E-state L1 line upgrades silently (MESI,
//     SwiftDir) or must synchronize the M state with the LLC (S-MESI);
//   - whether the initial load of a block is granted exclusivity (always
//     in MESI/S-MESI; only for non-write-protected data in SwiftDir,
//     whose GETS_WP request pins write-protected data in state S);
//   - whether a GETS that hits a directory-E block is served directly
//     from the LLC (S-MESI, where E is known clean) or must be forwarded
//     three-hop to the owner (MESI/SwiftDir, where E may hide a silent
//     upgrade).
//
// The message vocabulary mirrors the paper's Table III.
package coherence

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/sim"
)

// MsgKind enumerates coherence events exchanged between L1 controllers and
// the directory (Table III), plus the writeback/invalidation plumbing the
// table summarizes under generic ACKs.
type MsgKind uint8

const (
	// L1 -> LLC requests.
	MsgGETS             MsgKind = iota // load miss
	MsgGETSWP                          // load miss for write-protected data (SwiftDir only)
	MsgGETX                            // store miss
	MsgUpgrade                         // store hit on S (all) or E (S-MESI) needing permission
	MsgPUTS                            // clean sharer eviction notice
	MsgPUTX                            // owner eviction writeback (clean or dirty)
	MsgUnblock                         // requestor received Data; directory may unblock
	MsgExclusiveUnblock                // requestor received Data_Exclusive
	MsgInvAck                          // sharer finished invalidating
	MsgWBData                          // owner's copy sent down on a forwarded GETS (WB_Data / WB_Data_Clean)

	// LLC -> L1 responses and demands.
	MsgData          // shared data grant
	MsgDataExclusive // exclusive data grant
	MsgUpgradeAck    // upgrade permission granted
	MsgInv           // invalidate your S copy
	MsgFwdGETS       // serve this load on behalf of the directory
	MsgFwdGETX       // surrender your copy to the requestor
	MsgDowngrade     // S-MESI: your E copy is now S (LLC served a sharer)
	MsgWBAck         // eviction acknowledged

	// L1 -> L1 (three-hop data forwarding).
	MsgDataFromOwner // Data_From_Owner
)

var msgKindNames = [...]string{
	MsgGETS: "GETS", MsgGETSWP: "GETS_WP", MsgGETX: "GETX",
	MsgUpgrade: "Upgrade", MsgPUTS: "PUTS", MsgPUTX: "PUTX",
	MsgUnblock: "Unblock", MsgExclusiveUnblock: "Exclusive_Unblock",
	MsgInvAck: "Inv_Ack", MsgWBData: "WB_Data",
	MsgData: "Data", MsgDataExclusive: "Data_Exclusive",
	MsgUpgradeAck: "Upgrade_ACK", MsgInv: "Inv",
	MsgFwdGETS: "Fwd_GETS", MsgFwdGETX: "Fwd_GETX",
	MsgDowngrade: "Downgrade", MsgWBAck: "WB_Ack",
	MsgDataFromOwner: "Data_From_Owner",
}

func (k MsgKind) String() string {
	if int(k) < len(msgKindNames) && msgKindNames[k] != "" {
		return msgKindNames[k]
	}
	return fmt.Sprintf("MsgKind(%d)", uint8(k))
}

// Msg is one coherence message. Addr is always block-aligned.
type Msg struct {
	Kind        MsgKind
	Addr        cache.Addr
	Src         int  // sending L1 id, or -1 for the directory
	Requestor   int  // original requestor for forwarded requests
	WP          bool // write-protection bit hitchhiked from the MMU
	Data        uint64
	Dirty       bool     // PUTX/WBData: data differs from the LLC's copy
	FromWB      bool     // WBData: served out of the writeback buffer; sender holds no copy
	Excl        bool     // DataFromOwner: grant carries exclusivity (GETX forward)
	Owned       bool     // WBData: sender retains the dirty copy in state O (MOESI)
	MakeForward bool     // Data/DataFromOwner: requestor becomes the MESIF forwarder
	ClusterLast bool     // PUTX via a hub: the evictor was its cluster's last holder
	Served      ServedBy // Data/DataExclusive: where the grant was served from
}

// DirID is the Src value used by the directory.
const DirID = -1

// Payload op codes (sim.Payload.Op): every timed action an L1 or bank
// performs rides the engine as a (handler, payload) event instead of a
// captured closure, so the hot path allocates nothing per message.
const (
	opL1Recv            uint8 = iota + 1 // deliver a Msg to an L1 (trace + Receive)
	opL1Process                          // tag lookup done; examine a pooled Access
	opL1ProcessMiss                      // deferred VIVT translation done; re-check the miss
	opL1DataRetry                        // install stalled; retry a data grant
	opL1Respond                          // owner's delayed three-hop response
	opL1RespondRetained                  // MOESI owner response, dirty copy retained
	opBankDispatch                       // deliver a Msg to a bank
	opBankSendStage                      // bank-local latency elapsed; enter the crossbar
	opBankSendStagePin                   // like opBankSendStage for a pinned grant
	opBankDeliverPin                     // pinned grant arriving: unpin, then deliver
	opBankFetchIssue                     // LLC tag miss confirmed; issue the DRAM access
	opBankInstall                        // DRAM responded; install and grant (retries on stall)

	// Two-level directory routing (cluster hubs). Hub events are pure
	// routing plus exact-local-set bookkeeping: they never resolve a
	// protocol table entry and are invisible to the Observe hooks.
	opHubUp            // L1 -> hub: filter/forward a request toward the home bank
	opHubDown          // bank/owner -> hub: record and deliver a message to a local L1 (Z = dst)
	opHubDownPin       // like opHubDown for a pinned grant (forwards opBankDeliverPin)
	opHubInv           // home -> hub: multicast Inv to the recorded locals, aggregate acks
	opBankSendStageHub // bank-local latency elapsed; enter the fabric toward a hub (Z = cluster)
)

// Msg flag bits packed into sim.Payload.F.
const (
	pfWP uint8 = 1 << iota
	pfDirty
	pfFromWB
	pfExcl
	pfOwned
	pfMakeForward
	pfClusterLast
)

// payload packs the message into a fixed-size event payload. Z is left
// free for routing (the destination L1 of a staged bank send).
func (m Msg) payload(op uint8) sim.Payload {
	var f uint8
	if m.WP {
		f |= pfWP
	}
	if m.Dirty {
		f |= pfDirty
	}
	if m.FromWB {
		f |= pfFromWB
	}
	if m.Excl {
		f |= pfExcl
	}
	if m.Owned {
		f |= pfOwned
	}
	if m.MakeForward {
		f |= pfMakeForward
	}
	if m.ClusterLast {
		f |= pfClusterLast
	}
	return sim.Payload{
		A: uint64(m.Addr), B: m.Data,
		X: int32(m.Src), Y: int32(m.Requestor),
		K: uint8(m.Kind), F: f, Aux: uint8(m.Served), Op: op,
	}
}

// msgFromPayload is the inverse of Msg.payload.
func msgFromPayload(p sim.Payload) Msg {
	return Msg{
		Kind:        MsgKind(p.K),
		Addr:        cache.Addr(p.A),
		Src:         int(p.X),
		Requestor:   int(p.Y),
		WP:          p.F&pfWP != 0,
		Data:        p.B,
		Dirty:       p.F&pfDirty != 0,
		FromWB:      p.F&pfFromWB != 0,
		Excl:        p.F&pfExcl != 0,
		Owned:       p.F&pfOwned != 0,
		MakeForward: p.F&pfMakeForward != 0,
		ClusterLast: p.F&pfClusterLast != 0,
		Served:      ServedBy(p.Aux),
	}
}
