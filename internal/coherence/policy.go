package coherence

// Policy captures the protocol-specific decisions (Table IV). Everything
// else — the transaction structure, transient states, forwarding,
// invalidation, writebacks — is shared across protocols.
type Policy interface {
	// Name identifies the protocol in reports.
	Name() string

	// SilentUpgrade reports whether a store hitting an E-state L1 line
	// (whose write-protection marking is lineWP) may transition to M
	// locally without notifying the LLC. MESI and SwiftDir keep this
	// speedup unconditionally; S-MESI revokes it (Figure 3); the E_wp
	// ablation must revoke it for E_wp lines or the LLC would serve
	// stale data (the hazard that makes E_wp "complicated").
	SilentUpgrade(lineWP bool) bool

	// LoadRequest returns the coherence request an L1 load miss emits,
	// given the access's write-protection bit. SwiftDir (and the E_wp
	// ablation) emit GETS_WP for write-protected data.
	LoadRequest(wp bool) MsgKind

	// GrantExclusiveOnLoad reports whether the directory grants
	// exclusivity (I→E) for an initial load. SwiftDir answers false for
	// write-protected data, enforcing the I→S transition of Figure 4(a).
	GrantExclusiveOnLoad(wp bool) bool

	// ServeExclusiveFromLLC reports whether a GETS hitting a
	// directory-Exclusive block may be served directly from the LLC,
	// given whether the block was write-protected when granted. S-MESI
	// answers true unconditionally (its explicit upgrades make E
	// provably clean); the E_wp ablation answers true only for
	// write-protected blocks (which cannot have been silently modified);
	// MESI and SwiftDir must forward.
	ServeExclusiveFromLLC(blockWP bool) bool

	// OwnershipTransfer reports whether the protocol uses MOESI's Owned
	// state: a dirty owner answering a forwarded GETS keeps its dirty
	// copy in state O and supplies sharers directly, instead of writing
	// back to the LLC and downgrading to S.
	OwnershipTransfer() bool

	// ForwardStateFor reports whether the protocol designates a MESIF
	// Forward holder among the sharers of a (possibly write-protected)
	// block, so shared reads are served cache-to-cache by the forwarder
	// rather than by the LLC. The SwiftDir adaptation answers false for
	// write-protected data, keeping their service at the LLC constant.
	ForwardStateFor(wp bool) bool
}

type mesiPolicy struct{}

func (mesiPolicy) Name() string                    { return "MESI" }
func (mesiPolicy) SilentUpgrade(bool) bool         { return true }
func (mesiPolicy) LoadRequest(bool) MsgKind        { return MsgGETS }
func (mesiPolicy) GrantExclusiveOnLoad(bool) bool  { return true }
func (mesiPolicy) ServeExclusiveFromLLC(bool) bool { return false }

type smesiPolicy struct{}

func (smesiPolicy) Name() string                    { return "S-MESI" }
func (smesiPolicy) SilentUpgrade(bool) bool         { return false }
func (smesiPolicy) LoadRequest(bool) MsgKind        { return MsgGETS }
func (smesiPolicy) GrantExclusiveOnLoad(bool) bool  { return true }
func (smesiPolicy) ServeExclusiveFromLLC(bool) bool { return true }

type swiftDirPolicy struct{}

func (swiftDirPolicy) Name() string            { return "SwiftDir" }
func (swiftDirPolicy) SilentUpgrade(bool) bool { return true }

func (swiftDirPolicy) LoadRequest(wp bool) MsgKind {
	if wp {
		return MsgGETSWP
	}
	return MsgGETS
}

func (swiftDirPolicy) GrantExclusiveOnLoad(wp bool) bool { return !wp }
func (swiftDirPolicy) ServeExclusiveFromLLC(bool) bool   { return false }

// swiftDirEwpPolicy is the alternative design the paper considers and
// rejects in §III-B3: instead of eliminating the E state for
// write-protected data, introduce a specialized E_wp state that keeps
// exclusivity but lets the LLC serve remote loads directly (E_wp blocks
// are write-protected, hence provably unmodified). It is equally secure
// but complicates the protocol — an extra stable state at the directory
// and a Downgrade flow — which is exactly why SwiftDir prefers the I→S
// simplification. Kept here as an executable ablation.
type swiftDirEwpPolicy struct{}

func (swiftDirEwpPolicy) Name() string                   { return "SwiftDir-Ewp" }
func (swiftDirEwpPolicy) SilentUpgrade(lineWP bool) bool { return !lineWP }

func (swiftDirEwpPolicy) LoadRequest(wp bool) MsgKind {
	if wp {
		return MsgGETSWP
	}
	return MsgGETS
}

func (swiftDirEwpPolicy) GrantExclusiveOnLoad(bool) bool          { return true }
func (swiftDirEwpPolicy) ServeExclusiveFromLLC(blockWP bool) bool { return blockWP }

func (mesiPolicy) OwnershipTransfer() bool        { return false }
func (smesiPolicy) OwnershipTransfer() bool       { return false }
func (swiftDirPolicy) OwnershipTransfer() bool    { return false }
func (swiftDirEwpPolicy) OwnershipTransfer() bool { return false }

func (mesiPolicy) ForwardStateFor(bool) bool        { return false }
func (smesiPolicy) ForwardStateFor(bool) bool       { return false }
func (swiftDirPolicy) ForwardStateFor(bool) bool    { return false }
func (swiftDirEwpPolicy) ForwardStateFor(bool) bool { return false }

// moesiPolicy is the MOESI baseline (AMD Opteron family, §II-A2): MESI
// plus the Owned state, so dirty data migrate cache-to-cache without LLC
// writebacks. The E/S (and O/S) timing channel exists here exactly as in
// MESI.
type moesiPolicy struct{}

func (moesiPolicy) Name() string                    { return "MOESI" }
func (moesiPolicy) SilentUpgrade(bool) bool         { return true }
func (moesiPolicy) LoadRequest(bool) MsgKind        { return MsgGETS }
func (moesiPolicy) GrantExclusiveOnLoad(bool) bool  { return true }
func (moesiPolicy) ServeExclusiveFromLLC(bool) bool { return false }
func (moesiPolicy) OwnershipTransfer() bool         { return true }
func (moesiPolicy) ForwardStateFor(bool) bool       { return false }

// swiftDirMoesiPolicy applies SwiftDir's I→S rule on top of MOESI,
// demonstrating that the defense is orthogonal to the ownership-transfer
// optimization: write-protected data never reach E, M, or O, so every
// access to them is the constant LLC service.
type swiftDirMoesiPolicy struct{}

func (swiftDirMoesiPolicy) Name() string            { return "SwiftDir-MOESI" }
func (swiftDirMoesiPolicy) SilentUpgrade(bool) bool { return true }

func (swiftDirMoesiPolicy) LoadRequest(wp bool) MsgKind {
	if wp {
		return MsgGETSWP
	}
	return MsgGETS
}

func (swiftDirMoesiPolicy) GrantExclusiveOnLoad(wp bool) bool { return !wp }
func (swiftDirMoesiPolicy) ServeExclusiveFromLLC(bool) bool   { return false }
func (swiftDirMoesiPolicy) OwnershipTransfer() bool           { return true }
func (swiftDirMoesiPolicy) ForwardStateFor(bool) bool         { return false }

// mesifPolicy is the MESIF baseline (Intel QPI-era point-to-point
// interconnects): among the clean sharers of a block, the most recent
// requestor holds the Forward state and answers shared reads
// cache-to-cache. In a two-level inclusive hierarchy this turns S-state
// service into a three-hop path whenever a forwarder exists, leaving a
// residual forwarder-present/absent timing channel.
type mesifPolicy struct{}

func (mesifPolicy) Name() string                    { return "MESIF" }
func (mesifPolicy) SilentUpgrade(bool) bool         { return true }
func (mesifPolicy) LoadRequest(bool) MsgKind        { return MsgGETS }
func (mesifPolicy) GrantExclusiveOnLoad(bool) bool  { return true }
func (mesifPolicy) ServeExclusiveFromLLC(bool) bool { return false }
func (mesifPolicy) OwnershipTransfer() bool         { return false }
func (mesifPolicy) ForwardStateFor(bool) bool       { return true }

// swiftDirMesifPolicy applies SwiftDir to MESIF: write-protected data get
// neither E nor F, so every access to them is the constant LLC service;
// unprotected data keep the forwarder optimization.
type swiftDirMesifPolicy struct{}

func (swiftDirMesifPolicy) Name() string            { return "SwiftDir-MESIF" }
func (swiftDirMesifPolicy) SilentUpgrade(bool) bool { return true }

func (swiftDirMesifPolicy) LoadRequest(wp bool) MsgKind {
	if wp {
		return MsgGETSWP
	}
	return MsgGETS
}

func (swiftDirMesifPolicy) GrantExclusiveOnLoad(wp bool) bool { return !wp }
func (swiftDirMesifPolicy) ServeExclusiveFromLLC(bool) bool   { return false }
func (swiftDirMesifPolicy) OwnershipTransfer() bool           { return false }
func (swiftDirMesifPolicy) ForwardStateFor(wp bool) bool      { return !wp }

// msiPolicy is the three-state baseline that predates MESI: no Exclusive
// state at all, so a first reader installs Shared and *every* store to a
// previously-loaded line pays an explicit Upgrade round trip. It closes
// the E/S channel trivially (there is no E to distinguish) — it is the
// naive "just drop the E state" fix — but it taxes every private
// read-then-write, which is precisely the cost the E state was invented
// to remove (§II-A1) and which S-MESI only partially reintroduces.
type msiPolicy struct{}

func (msiPolicy) Name() string                    { return "MSI" }
func (msiPolicy) SilentUpgrade(bool) bool         { return false }
func (msiPolicy) LoadRequest(bool) MsgKind        { return MsgGETS }
func (msiPolicy) GrantExclusiveOnLoad(bool) bool  { return false }
func (msiPolicy) ServeExclusiveFromLLC(bool) bool { return false }
func (msiPolicy) OwnershipTransfer() bool         { return false }
func (msiPolicy) ForwardStateFor(bool) bool       { return false }

// Arbiter is an optional policy extension: a policy that also implements
// it installs a priority discipline on the directory's per-transaction
// request queues. QueueClass maps a request kind to its arbitration
// class (lower wins); queued requests are kept sorted by class, stably,
// with one soundness constraint the bank enforces regardless of class: a
// request never overtakes an earlier request from the same source (a
// core's eviction notice must stay ahead of its own re-request for the
// block, or the directory would see the owner re-request its own block).
type Arbiter interface {
	QueueClass(k MsgKind) uint8
}

// phasePriorityPolicy is MESI plus phase-priority directory arbitration
// (after the at-memory request-priority schemes of arXiv:1305.3038):
// requests that retire an already-started coherence phase drain before
// requests that would open a new one. Upgrades (a sharer finishing its
// store) beat GETX (a new writer), which beat loads. The transition
// relation is exactly MESI's — arbitration only reorders the replay of
// queued requests, which is not an externally observable event — so the
// model checker verifies it against the MESI-shaped table for free.
type phasePriorityPolicy struct{ mesiPolicy }

func (phasePriorityPolicy) Name() string { return "Phase-Priority" }

func (phasePriorityPolicy) QueueClass(k MsgKind) uint8 {
	switch k {
	case MsgUpgrade:
		return 0
	case MsgGETX:
		return 1
	case MsgGETS, MsgGETSWP:
		return 2
	}
	return 3 // PUTS/PUTX keep their arrival order at the back
}

// The protocols under evaluation.
var (
	MESI          Policy = mesiPolicy{}
	SMESI         Policy = smesiPolicy{}
	SwiftDir      Policy = swiftDirPolicy{}
	SwiftDirEwp   Policy = swiftDirEwpPolicy{}
	MOESI         Policy = moesiPolicy{}
	SwiftDirMOESI Policy = swiftDirMoesiPolicy{}
	MESIF         Policy = mesifPolicy{}
	SwiftDirMESIF Policy = swiftDirMesifPolicy{}
	MSI           Policy = msiPolicy{}
	PhasePriority Policy = phasePriorityPolicy{}
)

// Policies lists the paper's three protocols in its comparison order.
var Policies = []Policy{MESI, SwiftDir, SMESI}

// AllPolicies additionally includes the E_wp ablation, the MOESI and
// MESIF families, and the MSI baseline. The ablation sweep iterates this
// list, so its membership is part of the golden report surface; purely
// additive policies (arbitration variants) go in ExtendedPolicies.
var AllPolicies = []Policy{MESI, SwiftDir, SMESI, SwiftDirEwp, MOESI, SwiftDirMOESI, MESIF, SwiftDirMESIF, MSI}

// ExtendedPolicies is every selectable policy: AllPolicies plus the
// arbitration variants that are protocol-identical to a baseline.
var ExtendedPolicies = append(append([]Policy{}, AllPolicies...), PhasePriority)

// PolicyNames lists every selectable policy name, in ExtendedPolicies
// order — the single source for CLI flag help, so the lists cannot go
// stale as policies are added.
func PolicyNames() []string {
	names := make([]string, len(ExtendedPolicies))
	for i, p := range ExtendedPolicies {
		names[i] = p.Name()
	}
	return names
}

// PolicyByName resolves a protocol by its Name, or nil.
func PolicyByName(name string) Policy {
	for _, p := range ExtendedPolicies {
		if p.Name() == name {
			return p
		}
	}
	return nil
}
