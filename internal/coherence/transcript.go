package coherence

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/proto"
)

// TransitionRecorder captures every observed controller transition as a
// canonical text line:
//
//	L1(1)  0x000040  S     <- Store             -> SM^A   [StoreShared]
//	Dir    0x000040  DirS  <- Upgrade           -> DirBusy [UpgradeS]
//
// and cross-checks each against the policy's canonical table while
// recording: the (state, event) pair must be Defined or Defensive
// (defensive lines are tagged), and the post-transition state must be
// inside the entry's next-state mask. Violations land in Errs instead of
// panicking so a golden run reports every divergence at once.
//
// The recorder brackets transitions with the System Observe/ObservePost
// hook pairs, which unwind LIFO when processing nests (a data grant
// synchronously replaying a merged store), so a simple stack suffices.
type TransitionRecorder struct {
	sys   *System
	tab   *proto.Table
	stack []recFrame
	Lines []string
	Errs  []string
}

type recFrame struct {
	dir   bool
	id    int
	addr  cache.Addr
	l1St  proto.L1State
	dirSt proto.DirState
	ev    proto.Event
}

// AttachRecorder wires a recorder into sys's four observation hooks. The
// system's policy must have a registered proto table.
func AttachRecorder(sys *System) *TransitionRecorder {
	tab := sys.ProtoTable()
	if tab == nil {
		panic(fmt.Sprintf("coherence: no proto table for policy %s", sys.Policy.Name()))
	}
	tr := &TransitionRecorder{sys: sys, tab: tab}
	sys.Observe = tr.preMsg
	sys.ObservePost = tr.postMsg
	sys.ObserveCPU = tr.preCPU
	sys.ObserveCPUPost = tr.postCPU
	return tr
}

func (tr *TransitionRecorder) preMsg(m Msg, dst int) {
	f := recFrame{addr: m.Addr, ev: protoEvent(m.Kind)}
	if dst == DirID {
		f.dir = true
		f.dirSt = tr.sys.bankFor(m.Addr).protoDirState(m.Addr)
	} else {
		f.id = dst
		f.l1St = tr.sys.L1s[dst].protoState(m.Addr)
	}
	tr.stack = append(tr.stack, f)
}

func (tr *TransitionRecorder) preCPU(port int, block cache.Addr, write bool) {
	tr.stack = append(tr.stack, recFrame{
		id: port, addr: block, ev: cpuEvent(write),
		l1St: tr.sys.L1s[port].protoState(block),
	})
}

func (tr *TransitionRecorder) postMsg(m Msg, dst int) {
	f := tr.pop(dst == DirID, max(dst, 0), m.Addr, protoEvent(m.Kind))
	if f == nil {
		return
	}
	tr.emit(*f)
}

func (tr *TransitionRecorder) postCPU(port int, block cache.Addr, write bool) {
	f := tr.pop(false, port, block, cpuEvent(write))
	if f == nil {
		return
	}
	tr.emit(*f)
}

// pop unwinds the top frame, verifying the LIFO bracketing.
func (tr *TransitionRecorder) pop(dir bool, id int, addr cache.Addr, ev proto.Event) *recFrame {
	if len(tr.stack) == 0 {
		tr.errf("post hook for %v with an empty bracket stack", ev)
		return nil
	}
	f := tr.stack[len(tr.stack)-1]
	tr.stack = tr.stack[:len(tr.stack)-1]
	if f.dir != dir || (!dir && f.id != id) || f.addr != addr || f.ev != ev {
		tr.errf("post hook mismatch: bracketed %+v, closing (dir=%v id=%d addr=%#x ev=%v)",
			f, dir, id, addr, ev)
		return nil
	}
	return &f
}

// emit validates the finished transition against the table and appends
// its canonical line.
func (tr *TransitionRecorder) emit(f recFrame) {
	var who, state, next, action string
	var class proto.Class
	var nextOK bool
	if f.dir {
		who = "Dir"
		post := tr.sys.bankFor(f.addr).protoDirState(f.addr)
		ent := tr.tab.Dir[f.dirSt][f.ev]
		state, next = f.dirSt.String(), post.String()
		action, class = ent.Act.String(), ent.Class
		nextOK = proto.HasDir(ent.Next, post)
	} else {
		who = fmt.Sprintf("L1(%d)", f.id)
		post := tr.sys.L1s[f.id].protoState(f.addr)
		ent := tr.tab.L1[f.l1St][f.ev]
		state, next = f.l1St.String(), post.String()
		action, class = ent.Act.String(), ent.Class
		nextOK = proto.HasL1(ent.Next, post)
	}
	tag := ""
	switch class {
	case proto.Defined:
	case proto.Defensive:
		tag = " (defensive)"
	default:
		tr.errf("%s %#x: (%s, %v) is %v in the %s table",
			who, f.addr, state, f.ev, class, tr.tab.Policy)
	}
	if !nextOK && (class == proto.Defined || class == proto.Defensive) {
		tr.errf("%s %#x: (%s, %v) -> %s outside the next-state mask",
			who, f.addr, state, f.ev, next)
	}
	tr.Lines = append(tr.Lines, fmt.Sprintf("%-6s %#08x  %-5s <- %-17s -> %-5s  [%s]%s",
		who, uint64(f.addr), state, f.ev, next, action, tag))
}

func (tr *TransitionRecorder) errf(format string, args ...any) {
	tr.Errs = append(tr.Errs, fmt.Sprintf(format, args...))
}
