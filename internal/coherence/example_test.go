package coherence_test

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/dram"
)

func exampleSystem(p coherence.Policy) *coherence.System {
	return coherence.MustNewSystem(coherence.SystemConfig{
		NumL1:     2,
		L1Params:  cache.Params{Name: "L1", SizeBytes: 32 << 10, Ways: 4, BlockSize: 64},
		LLCParams: cache.Params{Name: "LLC", SizeBytes: 2 << 20, Ways: 16, BlockSize: 64},
		Banks:     1,
		Timing:    coherence.DefaultTiming(),
		Policy:    p,
		DRAM:      dram.DDR3_1600_8x8(),
	})
}

// Example shows the E/S timing difference on raw MESI — the root cause of
// the coherence timing channel — and SwiftDir closing it.
func Example() {
	for _, p := range []coherence.Policy{coherence.MESI, coherence.SwiftDir} {
		s := exampleSystem(p)
		s.AccessSync(1, 0x4000, false, true, 0) // sender touches a WP line
		r := s.AccessSync(0, 0x4000, false, true, 0)
		fmt.Printf("%-8s remote WP load: %d cycles (%v)\n", p.Name(), r.Latency, r.Served)
	}
	// Output:
	// MESI     remote WP load: 43 cycles (Remote)
	// SwiftDir remote WP load: 17 cycles (LLC)
}

// ExampleTracer captures a transaction's message sequence — Figure 4(a)'s
// I->S transition for write-protected data.
func ExampleTracer() {
	s := exampleSystem(coherence.SwiftDir)
	tr := s.AttachTracer()
	s.AccessSync(0, 0x4000, false, true, 0)
	s.Quiesce()
	fmt.Println(tr.KindSeq())
	// Output:
	// GETS_WP Data Unblock
}
