package coherence

import (
	"sort"

	"repro/internal/cache"
	"repro/internal/sim"
)

// This file exposes read-only views of controller state for the model
// checker (internal/mcheck) and for white-box tests: directory entries,
// in-flight transactions, MSHRs, and writeback buffers. Everything here
// is inspection-only — none of these accessors mutates protocol state —
// and iteration is in ascending address order so the output is canonical
// regardless of map iteration order.

// DirEntryView is a read-only snapshot of a directory entry.
type DirEntryView struct {
	State     DirState
	Owner     int
	Sharers   uint64
	LLCDirty  bool
	WP        bool
	Forwarder int
}

// TxnView is a read-only view of an in-flight directory transaction. The
// Queued slice aliases live controller state and must not be mutated or
// retained across engine steps.
type TxnView struct {
	Req         Msg
	WaitUnblock bool
	WaitWB      bool
	WaitAcks    int
	PendKind    uint8 // 0 = none; 1 = deferred store grant; 2 = deferred upgrade ack
	PendData    uint64
	Queued      []Msg
}

// NumBanks returns the LLC bank count.
func (s *System) NumBanks() int { return len(s.banks) }

// BankArray exposes bank i's LLC array for inspection.
func (s *System) BankArray(i int) *cache.Array { return s.banks[i].arr }

// sortedAddrs collects and sorts the keys of an address-keyed map.
func sortedAddrs[V any](m map[cache.Addr]V) []cache.Addr {
	addrs := make([]cache.Addr, 0, len(m))
	for a := range m {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

// DirEntryOf returns the directory entry for addr, if one exists.
func (s *System) DirEntryOf(addr cache.Addr) (DirEntryView, bool) {
	b := s.bankFor(addr)
	e, ok := b.entries[addr]
	if !ok {
		return DirEntryView{}, false
	}
	return DirEntryView{
		State: e.state, Owner: e.owner, Sharers: e.sharers,
		LLCDirty: e.llcDirty, WP: e.wp, Forwarder: e.forwarder,
	}, true
}

// ForEachDirEntry visits every directory entry, bank by bank, in
// ascending address order within each bank.
func (s *System) ForEachDirEntry(fn func(bank int, addr cache.Addr, v DirEntryView)) {
	for _, b := range s.banks {
		for _, addr := range sortedAddrs(b.entries) {
			v, _ := s.DirEntryOf(addr)
			fn(b.id, addr, v)
		}
	}
}

// TxnOf returns the in-flight transaction for addr, if the owning bank
// has one.
func (s *System) TxnOf(addr cache.Addr) (TxnView, bool) {
	t, ok := s.bankFor(addr).busy[addr]
	if !ok {
		return TxnView{}, false
	}
	return TxnView{
		Req: t.req, WaitUnblock: t.waitUnblock, WaitWB: t.waitWB,
		WaitAcks: t.waitAcks, PendKind: t.pendKind, PendData: t.pendData,
		Queued: t.queued,
	}, true
}

// BankBusy reports whether addr's bank has an in-flight transaction for
// it (the condition under which new requests queue).
func (s *System) BankBusy(addr cache.Addr) bool {
	_, ok := s.bankFor(addr).busy[addr]
	return ok
}

// ForEachBusy visits every in-flight directory transaction, bank by bank,
// in ascending address order within each bank.
func (s *System) ForEachBusy(fn func(bank int, addr cache.Addr, v TxnView)) {
	for _, b := range s.banks {
		for _, addr := range sortedAddrs(b.busy) {
			v, _ := s.TxnOf(addr)
			fn(b.id, addr, v)
		}
	}
}

// ForEachPinned visits every address with in-flight pinned grants, bank
// by bank, in ascending address order within each bank.
func (s *System) ForEachPinned(fn func(bank int, addr cache.Addr, n int)) {
	for _, b := range s.banks {
		for _, addr := range sortedAddrs(b.pinned) {
			fn(b.id, addr, b.pinned[addr])
		}
	}
}

// ForEachMemImage visits the main-memory shadow values that differ from
// the initial image, in ascending address order. The shadow is partitioned
// per bank (see bank.image); this merges the slices.
func (s *System) ForEachMemImage(fn func(addr cache.Addr, v uint64)) {
	merged := make(map[cache.Addr]uint64)
	for _, b := range s.banks {
		for a, v := range b.image {
			merged[a] = v
		}
	}
	for _, addr := range sortedAddrs(merged) {
		fn(addr, merged[addr])
	}
}

// MemRead returns the main-memory shadow value of addr (the initial
// address-derived token if the block was never written back).
func (s *System) MemRead(addr cache.Addr) uint64 { return s.memRead(addr) }

// InitialToken returns the shadow value untouched memory holds at addr —
// the value the data-value invariant expects a never-written block to
// read as.
func InitialToken(addr cache.Addr) uint64 { return initialToken(addr) }

// HandlerID maps an event handler belonging to this system to a stable
// small integer: L1 i -> i, bank j -> NumL1+j, the System itself (fast
// path completions) -> NumL1+NumBanks, hub c -> NumL1+NumBanks+1+c.
// Handlers from other components return -1. Model checkers use it to
// identify pending events without depending on pointer values.
func (s *System) HandlerID(h sim.Handler) int {
	switch v := h.(type) {
	case *L1:
		if v.sys == s {
			return v.ID
		}
	case *bank:
		if v.sys == s {
			return s.numL1 + v.id
		}
	case *System:
		if v == s {
			return s.numL1 + len(s.banks)
		}
	case *hub:
		if v.sys == s {
			return s.numL1 + len(s.banks) + 1 + v.id
		}
	}
	return -1
}

// ForEachHubState visits every cluster hub's per-block bookkeeping — the
// exact local-holder record, outstanding invalidation-ack count, and
// in-flight up-request count — hub by hub, in ascending address order
// within each hub. Blocks appear once even when tracked by several maps;
// absent counters read as zero. Flat systems have no hubs and get no
// visits.
func (s *System) ForEachHubState(fn func(hub int, addr cache.Addr, record uint64, pending, upReqs int)) {
	for _, h := range s.hubs {
		merged := make(map[cache.Addr]struct{}, len(h.record)+len(h.pending)+len(h.upReqs))
		for a := range h.record {
			merged[a] = struct{}{}
		}
		for a := range h.pending {
			merged[a] = struct{}{}
		}
		for a := range h.upReqs {
			merged[a] = struct{}{}
		}
		for _, addr := range sortedAddrs(merged) {
			fn(h.id, addr, h.record[addr], h.pending[addr], h.upReqs[addr])
		}
	}
}

// NumClusters returns the hub count (0 for a flat system).
func (s *System) NumClusters() int { return len(s.hubs) }

// MSHRStateOf returns the transient state of port's outstanding
// transaction for block, if one exists.
func (l *L1) MSHRStateOf(block cache.Addr) (Transient, bool) {
	ms, ok := l.mshrs[block]
	if !ok {
		return 0, false
	}
	return ms.state, true
}

// ForEachMSHR visits every outstanding MSHR in ascending block order. The
// pending slice aliases live controller state and must not be mutated or
// retained across engine steps.
func (l *L1) ForEachMSHR(fn func(block cache.Addr, st Transient, wp bool, pending []Access)) {
	for _, addr := range sortedAddrs(l.mshrs) {
		ms := l.mshrs[addr]
		fn(addr, ms.state, ms.wp, ms.pending)
	}
}

// ForEachWB visits every writeback-buffer entry in ascending block order.
func (l *L1) ForEachWB(fn func(block cache.Addr, data uint64, dirty bool)) {
	for _, addr := range sortedAddrs(l.wb) {
		e := l.wb[addr]
		fn(addr, e.data, e.dirty)
	}
}
