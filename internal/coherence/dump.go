package coherence

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/sim"
)

// msgTailN sizes the delivered-message ring kept for failure diagnostics.
// Power of two; 32 messages comfortably covers the transcript of the
// transactions implicated in any single violation.
const msgTailN = 32

// opNames renders the shared L1/bank payload-op namespace (message.go).
var opNames = [...]string{
	opL1Recv: "L1Recv", opL1Process: "L1Process", opL1ProcessMiss: "L1ProcessMiss",
	opL1DataRetry: "L1DataRetry", opL1Respond: "L1Respond", opL1RespondRetained: "L1RespondRetained",
	opBankDispatch: "BankDispatch", opBankSendStage: "BankSendStage",
	opBankSendStagePin: "BankSendStagePin", opBankDeliverPin: "BankDeliverPin",
	opBankFetchIssue: "BankFetchIssue", opBankInstall: "BankInstall",
	opHubUp: "HubUp", opHubDown: "HubDown", opHubDownPin: "HubDownPin",
	opHubInv: "HubInv", opBankSendStageHub: "BankSendStageHub",
}

// msgCarrying reports whether op's payload encodes a full Msg (so the
// dump can decode it with msgFromPayload).
func msgCarrying(op uint8) bool {
	switch op {
	case opL1Recv, opL1DataRetry, opBankDispatch, opBankSendStage, opBankSendStagePin, opBankDeliverPin,
		opHubUp, opHubDown, opHubDownPin, opHubInv, opBankSendStageHub:
		return true
	}
	return false
}

// handlerName renders an event handler for the dump: this system's L1s,
// banks, and fast-path completions by role, anything else by type.
func (s *System) handlerName(h sim.Handler) string {
	switch v := h.(type) {
	case *L1:
		if v.sys == s {
			return fmt.Sprintf("L1(%d)", v.ID)
		}
	case *bank:
		if v.sys == s {
			return fmt.Sprintf("bank(%d)", v.id)
		}
	case *System:
		if v == s {
			return "system"
		}
	case *hub:
		if v.sys == s {
			return fmt.Sprintf("hub(%d)", v.id)
		}
	}
	return fmt.Sprintf("%T", h)
}

// DumpState renders the structured failure diagnostic the issue's
// containment story is built on: the complete pending-event queue, every
// directory transient transaction, pinned grants, per-L1 MSHR and
// writeback-buffer state, and the tail of delivered coherence messages.
// Iteration is in canonical (sorted) order throughout, so a deterministic
// replay reproduces the dump byte for byte. Failure-path only — it
// allocates freely.
func (s *System) DumpState() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== system state at cycle %d ===\n", s.Eng.Now())

	renderEvent := func(rel sim.Cycle, h sim.Handler, p sim.Payload, isClosure bool) {
		if isClosure {
			fmt.Fprintf(&sb, "  +%-6d closure\n", rel)
			return
		}
		name := "?"
		if _, isSys := h.(*System); isSys && p.Op == sysOpFastDone {
			name = "SysFastDone"
		} else if int(p.Op) < len(opNames) && opNames[p.Op] != "" {
			name = opNames[p.Op]
		}
		fmt.Fprintf(&sb, "  +%-6d %-9s %-17s", rel, s.handlerName(h), name)
		if msgCarrying(p.Op) {
			m := msgFromPayload(p)
			fmt.Fprintf(&sb, " %s %#x src=%s", m.Kind, uint64(m.Addr), endpoint(m.Src))
			if p.Z != 0 || p.Op == opBankSendStage || p.Op == opBankSendStagePin || p.Op == opBankDeliverPin {
				fmt.Fprintf(&sb, " dst=%s", endpoint(int(p.Z)))
			}
		} else {
			fmt.Fprintf(&sb, " A=%#x B=%#x X=%d Z=%d", p.A, p.B, p.X, p.Z)
		}
		sb.WriteByte('\n')
	}
	if s.sh == nil {
		fmt.Fprintf(&sb, "-- pending events (%d, execution order) --\n", s.Eng.Pending())
		s.Eng.ForEachPending(renderEvent)
	} else {
		// Merged global execution order — (cycle, key) across every shard
		// queue, the cross-shard merge buffers, and the global queue. In
		// stepping mode every key is exact and the clocks are lockstep, so
		// these bytes are identical to the sequential branch above: a crash
		// bundle recorded at any shard count replays byte-for-byte at any
		// other.
		now := s.sh.Now()
		fmt.Fprintf(&sb, "-- pending events (%d, execution order) --\n", s.sh.PendingAll())
		s.sh.ForEachPendingMerged(func(when sim.Cycle, h sim.Handler, p sim.Payload, isClosure bool) {
			renderEvent(when-now, h, p, isClosure)
		})
	}

	sb.WriteString("-- directory transient transactions --\n")
	s.ForEachBusy(func(bank int, addr cache.Addr, v TxnView) {
		fmt.Fprintf(&sb, "  bank %d %#x: req=%s src=%s waitUnblock=%v waitWB=%v waitAcks=%d pendKind=%d queued=%d\n",
			bank, uint64(addr), v.Req.Kind, endpoint(v.Req.Src),
			v.WaitUnblock, v.WaitWB, v.WaitAcks, v.PendKind, len(v.Queued))
	})
	s.ForEachPinned(func(bank int, addr cache.Addr, n int) {
		fmt.Fprintf(&sb, "  bank %d %#x: pinned x%d\n", bank, uint64(addr), n)
	})
	if s.twoLevel {
		sb.WriteString("-- hub records --\n")
		s.ForEachHubState(func(hub int, addr cache.Addr, record uint64, pending, upReqs int) {
			fmt.Fprintf(&sb, "  hub %d %#x: record=%#x pending=%d upReqs=%d\n",
				hub, uint64(addr), record, pending, upReqs)
		})
	}

	sb.WriteString("-- L1 MSHR / writeback state --\n")
	for _, l1 := range s.L1s {
		l1.ForEachMSHR(func(block cache.Addr, st Transient, wp bool, pending []Access) {
			fmt.Fprintf(&sb, "  L1 %d MSHR %#x: %s wp=%v pending=%d\n",
				l1.ID, uint64(block), st, wp, len(pending))
		})
		l1.ForEachWB(func(block cache.Addr, data uint64, dirty bool) {
			fmt.Fprintf(&sb, "  L1 %d WB %#x: data=%#x dirty=%v\n",
				l1.ID, uint64(block), data, dirty)
		})
	}

	fmt.Fprintf(&sb, "-- last %d delivered messages (oldest first) --\n", msgTailN)
	start := uint64(0)
	if s.msgPos > msgTailN {
		start = s.msgPos - msgTailN
	}
	for i := start; i < s.msgPos; i++ {
		sb.WriteString(s.lastMsgs[i&(msgTailN-1)].String())
		sb.WriteByte('\n')
	}
	// Messages delivered inside parallel epochs land in per-shard rings
	// (diagnostic-only; see traceShard). Render any that exist so a
	// watchdog trip mid-epoch still shows the freshest traffic.
	for si := range s.shardTrace {
		ts := &s.shardTrace[si]
		if ts.msgPos == 0 {
			continue
		}
		fmt.Fprintf(&sb, "-- shard %d recent messages (oldest first) --\n", si)
		start := uint64(0)
		if ts.msgPos > msgTailN {
			start = ts.msgPos - msgTailN
		}
		for i := start; i < ts.msgPos; i++ {
			sb.WriteString(ts.lastMsgs[i&(msgTailN-1)].String())
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// MemImageHash hashes the architectural memory state of a quiesced
// system: for every block, the value a fresh load would observe — the
// dirty L1 copy if one exists, else the LLC copy, else the main-memory
// shadow. Blocks still holding their initial address-derived token are
// excluded, so the hash is independent of which never-written blocks
// happen to be cache-resident. Timing faults move blocks between these
// locations but never change the winning value, which is exactly what the
// metamorphic soak asserts.
func (s *System) MemImageHash() string {
	vals := s.MemValues()
	h := sha256.New()
	for _, a := range sortedAddrs(vals) {
		fmt.Fprintf(h, "%x %x\n", uint64(a), vals[a])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// MemValues returns the winning value of every block that has diverged
// from its initial address-derived token: the dirty L1 copy if one
// exists, else the LLC copy, else the main-memory shadow. This is the
// per-physical-block architectural image; core.Machine.ArchMemHash
// re-keys it by virtual address for the machine-level soak oracle, where
// physical-frame assignment is itself timing-dependent.
func (s *System) MemValues() map[cache.Addr]uint64 {
	n := 0
	for _, b := range s.banks {
		n += len(b.image)
	}
	vals := make(map[cache.Addr]uint64, n)
	for _, b := range s.banks {
		for a, v := range b.image {
			vals[a] = v
		}
	}
	for _, b := range s.banks {
		b.arr.ForEachValid(func(a cache.Addr, ln *cache.Line) {
			vals[a] = ln.Data
		})
	}
	for _, l1 := range s.L1s {
		l1.arr.ForEachValid(func(a cache.Addr, ln *cache.Line) {
			if ln.State.Dirty() {
				vals[a] = ln.Data
			}
		})
	}
	for a, v := range vals {
		if v == initialToken(a) {
			delete(vals, a)
		}
	}
	return vals
}
