package coherence

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/proto"
	"repro/internal/sim"
)

// ServedBy classifies where a completed access was served from; it is the
// quantity the E/S timing channel observes.
type ServedBy uint8

const (
	ServedL1      ServedBy = iota // private L1 hit (incl. silent upgrade)
	ServedLLC                     // two-hop LLC service
	ServedRemote                  // three-hop forwarded service from another L1
	ServedMem                     // main-memory fetch
	ServedUpgrade                 // store completed via an Upgrade round trip
)

func (s ServedBy) String() string {
	switch s {
	case ServedL1:
		return "L1"
	case ServedLLC:
		return "LLC"
	case ServedRemote:
		return "Remote"
	case ServedMem:
		return "Mem"
	case ServedUpgrade:
		return "Upgrade"
	}
	return fmt.Sprintf("ServedBy(%d)", uint8(s))
}

// Access is one CPU-side memory request presented to an L1 controller.
type Access struct {
	Addr  cache.Addr // physical address
	Write bool
	WP    bool   // write-protection bit delivered by the MMU with the translation
	Value uint64 // store token (ignored for loads)

	// Seq orders same-core stores: the submitting context stamps each
	// store with a strictly increasing sequence number (0 = unordered).
	// Stores can reach the controller out of program order — a store
	// paying a page-table walk is overtaken by a younger same-block store
	// submitted behind it with a hot TLB — and the controller uses Seq to
	// keep the *data* application in program order regardless of arrival
	// order (see applyStore). Loads leave it zero.
	Seq uint64

	// MissPenalty is charged once, before the coherence request leaves
	// the L1, if the access misses. It models virtually-indexed L1
	// architectures (VIVT) that perform address translation only on the
	// miss path (§IV-B of the paper).
	MissPenalty sim.Cycle

	// Extra is latency the submitter already spent (e.g. translation
	// charged before the access reached the L1); it is added to the
	// reported Latency without being simulated again.
	Extra sim.Cycle

	// Done is invoked exactly once at completion. It may be nil.
	Done func(AccessResult)

	start sim.Cycle
}

// AccessResult reports how an access completed.
type AccessResult struct {
	Latency sim.Cycle
	Value   uint64 // loaded value (or the stored token for writes)
	Served  ServedBy
	Write   bool
	WP      bool
}

// Transient is an L1 MSHR state (Table I; IM^D and SM^A are standard
// MESI_Two_Level companions of the paper's IS^D and EM^A).
type Transient uint8

const (
	TrISD Transient = iota // I->S/E, waiting for Data
	TrIMD                  // I->M, waiting for Data_Exclusive
	TrSMA                  // S->M, waiting for Upgrade ACK
	TrEMA                  // E->M, waiting for LLC's ACK (S-MESI only)
)

// String renders the proto-table name for the state, so MSHR dumps,
// transcripts, and relation entries are spelled identically by
// construction (there is no second name table to drift).
func (t Transient) String() string {
	return (proto.L1ISD + proto.L1State(t)).String()
}

type mshr struct {
	state   Transient
	wp      bool
	pending []Access // pending[0] initiated the transaction
}

// grantOf maps a data-response kind to the line state it grants; the
// mapping is shared by first delivery (Receive) and install-stall retries.
func grantOf(m Msg) cache.LineState {
	switch m.Kind {
	case MsgDataExclusive:
		return cache.Exclusive
	case MsgDataFromOwner:
		if m.Excl {
			return cache.Exclusive
		}
		return cache.Shared
	default:
		return cache.Shared
	}
}

type wbEntry struct {
	data  uint64
	dirty bool
}

// L1Stats counts controller activity.
type L1Stats struct {
	Loads, Stores       uint64
	LoadHits, StoreHits uint64
	SilentUpgrades      uint64 // E->M without LLC communication
	ExplicitUpgrades    uint64 // Upgrade round trips (S->M, or E->M under S-MESI)
	Writebacks          uint64
	FwdsServed          uint64 // forwarded requests answered for the directory
	Invalidations       uint64 // lines dropped on Inv/FwdGETX/recall
	Prefetches          uint64 // next-line prefetches issued

	// Fast-path split: FastHits counts accesses completed synchronously by
	// TryFastAccess; SlowPath counts accesses submitted to the event path
	// via Request. FastHits+SlowPath is the total CPU-side access count.
	// Both are observability-only and excluded from report byte-identity.
	FastHits uint64
	SlowPath uint64
}

// L1 is a private cache controller. It owns a set-associative array, an
// MSHR table (one outstanding transaction per block, with merging), and a
// writeback buffer that answers forwarded requests racing an eviction.
//
// All timed work is scheduled through sim.Payload events handled by
// (*L1).Handle; in-flight Access values live in a free-listed slot pool
// and MSHRs are recycled at transaction completion, so a steady-state hit
// or miss allocates nothing.
type L1 struct {
	ID     int
	sys    *System
	eng    *sim.Engine
	timing Timing
	policy Policy
	tab    *proto.Table // canonical transition relation (drives dispatch)
	arr    *cache.Array

	mshrs map[cache.Addr]*mshr
	wb    map[cache.Addr]wbEntry

	// storeSeqs records, per block, the highest store sequence number this
	// core has applied to it. A store whose Seq is below the recorded value
	// arrived after an architecturally younger same-core store (reordered
	// by an asymmetric translation delay) and must not clobber its data.
	// Entries persist across evictions — the window where the suppression
	// matters can span a refill — and the map is bounded by the number of
	// distinct blocks the core ever stores to.
	storeSeqs map[cache.Addr]uint64

	mshrFree []*mshr  // recycled MSHRs
	accs     []Access // slots for accesses riding tag-lookup/translation events
	accFree  []int32  // free slot indexes

	prefetch PrefetchMode

	Stats L1Stats
}

// newL1 wires a controller into its owning system.
func newL1(id int, sys *System, params cache.Params) *L1 {
	lines := params.SizeBytes / params.BlockSize
	msz := lines / 4
	if msz < 16 {
		msz = 16
	}
	return &L1{
		ID:        id,
		sys:       sys,
		eng:       sys.engineForL1(id),
		timing:    sys.Timing,
		policy:    sys.Policy,
		tab:       sys.table,
		arr:       cache.NewArray(params),
		mshrs:     make(map[cache.Addr]*mshr, msz),
		wb:        make(map[cache.Addr]wbEntry, 64),
		storeSeqs: make(map[cache.Addr]uint64, msz),
	}
}

// toDir schedules delivery of m toward the owning bank (adds Hop via the
// fabric). Under the two-level directory the message funnels through the
// cluster hub, which filters or forwards it (one extra fabric traversal).
func (l *L1) toDir(m Msg) {
	if l.sys.twoLevel {
		c := l.sys.clusterOf(l.ID)
		l.sys.net.SendEvent(l.ID, l.sys.hubPort(c), l.sys.hubs[c], m.payload(opHubUp))
		return
	}
	b := l.sys.bankFor(m.Addr)
	l.sys.net.SendEvent(l.ID, l.sys.bankPort(b.id), b, m.payload(opBankDispatch))
}

// toL1 schedules delivery of m to a peer controller. Under the two-level
// directory the message routes through the DESTINATION's hub so the hub
// record sees every grant entering its cluster.
func (l *L1) toL1(dst int, m Msg) {
	if l.sys.twoLevel {
		c := l.sys.clusterOf(dst)
		p := m.payload(opHubDown)
		p.Z = int32(dst)
		l.sys.net.SendEvent(l.ID, l.sys.hubPort(c), l.sys.hubs[c], p)
		return
	}
	l.sys.net.SendEvent(l.ID, dst, l.sys.L1s[dst], m.payload(opL1Recv))
}

// putAccess parks an in-flight access in the slot pool and returns its
// index; takeAccess releases the slot. The pool exists so tag-lookup and
// deferred-translation events can carry the access (its Done closure
// included) without capturing it in a per-event closure.
func (l *L1) putAccess(a Access) int32 {
	if n := len(l.accFree); n > 0 {
		i := l.accFree[n-1]
		l.accFree = l.accFree[:n-1]
		l.accs[i] = a
		return i
	}
	l.accs = append(l.accs, a)
	return int32(len(l.accs) - 1)
}

func (l *L1) takeAccess(i int32) Access {
	a := l.accs[i]
	l.accs[i] = Access{} // drop the Done reference held by the slot
	l.accFree = append(l.accFree, i)
	return a
}

// newMSHR takes a recycled MSHR (or allocates the pool's next one) and
// initializes it for a fresh transaction.
func (l *L1) newMSHR(state Transient, wp bool) *mshr {
	var ms *mshr
	if n := len(l.mshrFree); n > 0 {
		ms = l.mshrFree[n-1]
		l.mshrFree = l.mshrFree[:n-1]
	} else {
		ms = &mshr{}
	}
	ms.state, ms.wp = state, wp
	return ms
}

// freeMSHR recycles a completed transaction's MSHR, zeroing the pending
// slots so no Access (and its Done closure) outlives its transaction.
func (l *L1) freeMSHR(ms *mshr) {
	for i := range ms.pending {
		ms.pending[i] = Access{}
	}
	ms.pending = ms.pending[:0]
	l.mshrFree = append(l.mshrFree, ms)
}

// Handle dispatches the controller's payload events (see the op constants
// in message.go).
func (l *L1) Handle(p sim.Payload) {
	switch p.Op {
	case opL1Recv:
		m := msgFromPayload(p)
		l.sys.trace(l.eng, m, l.ID)
		l.Receive(m)
		if l.sys.ObservePost != nil {
			l.sys.ObservePost(m, l.ID)
		}
	case opL1Process:
		l.process(l.takeAccess(int32(p.A)))
	case opL1ProcessMiss:
		l.processMiss(cache.Addr(p.B), l.takeAccess(int32(p.A)))
	case opL1DataRetry:
		m := msgFromPayload(p)
		l.onData(m, grantOf(m))
	case opL1Respond:
		addr, data, req := cache.Addr(p.A), p.B, int(p.X)
		excl := p.F&pfExcl != 0
		l.toL1(req, Msg{
			Kind: MsgDataFromOwner, Addr: addr, Src: l.ID,
			Data: data, Excl: excl, MakeForward: p.F&pfMakeForward != 0,
		})
		if !excl {
			l.toDir(Msg{
				Kind: MsgWBData, Addr: addr, Src: l.ID,
				Data: data, Dirty: p.F&pfDirty != 0, FromWB: p.F&pfFromWB != 0,
			})
		}
	case opL1RespondRetained:
		addr := cache.Addr(p.A)
		l.toL1(int(p.X), Msg{Kind: MsgDataFromOwner, Addr: addr, Src: l.ID, Data: p.B})
		l.toDir(Msg{Kind: MsgWBData, Addr: addr, Src: l.ID, Owned: true})
	default:
		l.violate(0, "unknown payload op %d", p.Op)
	}
}

// Array exposes the underlying array for invariant checks and tests.
func (l *L1) Array() *cache.Array { return l.arr }

// OutstandingMisses returns the number of active MSHRs.
func (l *L1) OutstandingMisses() int { return len(l.mshrs) }

// Request submits a CPU access. The L1 tag lookup cost is charged before
// the access is examined.
func (l *L1) Request(a Access) {
	a.start = l.eng.Now()
	if a.Write {
		l.Stats.Stores++
	} else {
		l.Stats.Loads++
	}
	l.Stats.SlowPath++
	l.eng.ScheduleEvent(l.timing.L1Tag, l, sim.Payload{Op: opL1Process, A: uint64(l.putAccess(a))})
}

// tryFast attempts to complete a stable-state hit synchronously, mutating
// the array and statistics exactly as the event path's process() would and
// returning the latency that path would have reported. It succeeds only
// when nothing can observe the controller between now and the would-be
// completion time:
//
//   - no MSHR is outstanding anywhere in this L1 (so no data fill can
//     Install — and re-stamp the LRU clock — inside the window);
//   - no access is parked in the slot pool (an earlier tag lookup or
//     deferred translation would probe the array inside the window);
//   - the block's LLC bank has no busy transaction and no pinned grant for
//     the block, so no invalidation, recall, forward, or upgrade ack that
//     could touch this block is in flight;
//   - the line is resident in a state that satisfies the access without
//     any protocol transition other than a policy-approved silent upgrade.
//
// Any message for a *different* block that is already in flight to this L1
// commutes with the hit (Invalidate and the Fwd/Downgrade handlers never
// touch the replacement clock), so the mutation may safely happen at
// submission time instead of L1Tag cycles later.
func (l *L1) tryFast(a *Access) (AccessResult, bool) {
	if len(l.mshrs) != 0 || len(l.accFree) != len(l.accs) {
		return AccessResult{}, false
	}
	block := l.arr.BlockAddr(a.Addr)
	b := l.sys.bankFor(block)
	if len(b.busy) != 0 || b.pinned[block] != 0 {
		return AccessResult{}, false
	}
	ln := l.arr.Lookup(block)
	if ln == nil {
		return AccessResult{}, false
	}
	if a.Write {
		switch ln.State {
		case cache.Modified:
			// In-place store, no transition.
		case cache.Exclusive:
			if !l.policy.SilentUpgrade(ln.WP) {
				return AccessResult{}, false // EM^A round trip (S-MESI)
			}
		default:
			return AccessResult{}, false // S/O/F store needs an Upgrade
		}
	}
	l.arr.Probe(block) // array stats + LRU touch, as process() does
	value := ln.Data
	if a.Write {
		l.Stats.Stores++
		l.Stats.StoreHits++
		if ln.State == cache.Exclusive {
			l.Stats.SilentUpgrades++
			ln.State = cache.Modified
		}
		l.applyStore(ln, block, a)
		// A store reports its own value even when a younger same-core
		// store already wrote the block, exactly as the event path does.
		value = a.Value
	} else {
		l.Stats.Loads++
		l.Stats.LoadHits++
	}
	l.Stats.FastHits++
	l.eng.Progress()
	return AccessResult{
		Latency: a.Extra + l.timing.L1Tag,
		Value:   value,
		Served:  ServedL1,
		Write:   a.Write,
		WP:      a.WP,
	}, true
}

// applyStore writes a store's value into its resident line — unless an
// architecturally younger same-core store (higher Seq) already wrote the
// block, in which case the stale value is discarded. Stores can arrive out
// of program order when an older store's deferred translation lets a
// younger same-block store overtake it; the protocol transitions and
// completion timing proceed identically either way, only the data
// application is ordered. Unsequenced stores (Seq 0: direct protocol
// tests, probes) always apply.
func (l *L1) applyStore(ln *cache.Line, block cache.Addr, a *Access) {
	if a.Seq != 0 {
		if last, ok := l.storeSeqs[block]; ok && a.Seq < last {
			return
		}
		l.storeSeqs[block] = a.Seq
	}
	ln.Data = a.Value
	ln.WP = false
}

// process examines an access after the tag lookup. It is also the replay
// entry point for accesses that were queued behind an MSHR.
func (l *L1) process(a Access) {
	block := l.arr.BlockAddr(a.Addr)
	if l.sys.ObserveCPU != nil {
		l.sys.ObserveCPU(l.ID, block, a.Write)
	}
	l.examine(block, a)
	if l.sys.ObserveCPUPost != nil {
		l.sys.ObserveCPUPost(l.ID, block, a.Write)
	}
}

// l1Entry is the generic dispatch step shared by CPU examinations and
// message deliveries: resolve (state-of-block, event) in the canonical
// table and fail with a typed protocol violation unless the pair is part
// of the relation (Defined) or explicitly tolerated (Defensive). The
// lookup is allocation-free: protoState is a map/array probe and the
// table is a fixed array indexed by the enums.
func (l *L1) l1Entry(block cache.Addr, ev proto.Event) *proto.L1Entry {
	st := l.protoState(block)
	ent := &l.tab.L1[st][ev]
	if ent.Class != proto.Defined && ent.Class != proto.Defensive {
		l.violate(block, "%v in state %v is %v under %s", ev, st, ent.Class, l.tab.Policy)
	}
	return ent
}

// examine is the body of process: one observed CPU examination, resolved
// through the transition table. Each action body performs the Probe the
// pre-table controller did at the same point, so array statistics and
// LRU order are untouched by the dispatch change.
func (l *L1) examine(block cache.Addr, a Access) {
	ent := l.l1Entry(block, cpuEvent(a.Write))
	switch ent.Act {
	case proto.L1ActMerge:
		// A transaction is outstanding for the block: merge behind it.
		ms := l.mshrs[block]
		ms.pending = append(ms.pending, a)
	case proto.L1ActMiss:
		l.arr.Probe(block) // counts the miss
		if a.MissPenalty > 0 {
			// Deferred translation (VIVT): pay it now, once.
			d := a.MissPenalty
			a.MissPenalty = 0
			l.eng.ScheduleEvent(d, l, sim.Payload{
				Op: opL1ProcessMiss, A: uint64(l.putAccess(a)), B: uint64(block),
			})
			return
		}
		l.miss(block, a)
	case proto.L1ActLoadHit:
		ln := l.arr.Probe(block)
		l.Stats.LoadHits++
		l.complete(a, ln.Data, ServedL1)
	case proto.L1ActStoreHitM:
		ln := l.arr.Probe(block)
		l.Stats.StoreHits++
		l.applyStore(ln, block, &a)
		l.complete(a, a.Value, ServedL1)
	case proto.L1ActStoreHitE:
		ln := l.arr.Probe(block)
		if l.policy.SilentUpgrade(ln.WP) {
			// The MESI speedup S-MESI revokes: E->M entirely within
			// the L1 (Figure 3(a), Figure 4(d)).
			l.Stats.StoreHits++
			l.Stats.SilentUpgrades++
			ln.State = cache.Modified
			l.applyStore(ln, block, &a)
			l.complete(a, a.Value, ServedL1)
			return
		}
		// S-MESI: enter EM^A and ask the LLC (Figure 2 / Figure 3(b)).
		l.Stats.ExplicitUpgrades++
		ms := l.newMSHR(TrEMA, false)
		ms.pending = append(ms.pending, a)
		l.mshrs[block] = ms
		l.toDir(Msg{Kind: MsgUpgrade, Addr: block, Src: l.ID})
	case proto.L1ActStoreShared:
		// Neither an Owned nor a Forward holder is exclusive: other
		// caches may hold S copies, so the store needs the same Upgrade
		// round trip.
		l.arr.Probe(block)
		l.Stats.ExplicitUpgrades++
		ms := l.newMSHR(TrSMA, false)
		ms.pending = append(ms.pending, a)
		l.mshrs[block] = ms
		l.toDir(Msg{Kind: MsgUpgrade, Addr: block, Src: l.ID})
	default:
		l.violate(block, "CPU action %v unhandled", ent.Act)
	}
}

// processMiss re-checks the block after a deferred translation: a merged
// transaction or a racing fill may have changed the picture meanwhile.
func (l *L1) processMiss(block cache.Addr, a Access) {
	if ms, ok := l.mshrs[block]; ok {
		ms.pending = append(ms.pending, a)
		return
	}
	if l.arr.Lookup(block) != nil {
		l.process(a) // filled while we were translating
		return
	}
	l.miss(block, a)
}

func (l *L1) miss(block cache.Addr, a Access) {
	if a.Write {
		ms := l.newMSHR(TrIMD, a.WP)
		ms.pending = append(ms.pending, a)
		l.mshrs[block] = ms
		l.toDir(Msg{Kind: MsgGETX, Addr: block, Src: l.ID, WP: a.WP})
		return
	}
	ms := l.newMSHR(TrISD, a.WP)
	ms.pending = append(ms.pending, a)
	l.mshrs[block] = ms
	l.toDir(Msg{Kind: l.policy.LoadRequest(a.WP), Addr: block, Src: l.ID, WP: a.WP})
	l.maybePrefetch(block, a.WP)
}

// maybePrefetch issues a next-line prefetch after a demand load miss. The
// prefetcher never crosses a 4 KB page boundary (it has no translation
// for the next page). In naive mode the write-protection bit is dropped —
// the security hazard PrefetchWPAware exists to avoid.
func (l *L1) maybePrefetch(block cache.Addr, wp bool) {
	if l.prefetch == PrefetchOff {
		return
	}
	next := block + cache.Addr(l.arr.Params().BlockSize)
	if next>>12 != block>>12 {
		return // page-boundary stop
	}
	if l.arr.Lookup(next) != nil {
		return
	}
	if _, busy := l.mshrs[next]; busy {
		return
	}
	pwp := wp
	if l.prefetch == PrefetchNaive {
		pwp = false
	}
	l.Stats.Prefetches++
	l.mshrs[next] = l.newMSHR(TrISD, pwp)
	l.toDir(Msg{Kind: l.policy.LoadRequest(pwp), Addr: next, Src: l.ID, WP: pwp})
}

// Receive handles a message from the directory or a peer L1. Delivery
// latency was charged by the sender. Dispatch is the same generic table
// step as examine: the (state, event) pair must be in the policy's
// relation, and the entry's action names the handler.
func (l *L1) Receive(m Msg) {
	ent := l.l1Entry(m.Addr, protoEvent(m.Kind))
	switch ent.Act {
	case proto.L1ActData:
		l.onData(m, grantOf(m))
	case proto.L1ActUpgradeAck:
		l.onUpgradeAck(m)
	case proto.L1ActInv:
		l.onInv(m)
	case proto.L1ActFwdGETS:
		l.onFwdGETS(m)
	case proto.L1ActFwdGETX:
		l.onFwdGETX(m)
	case proto.L1ActDowngrade:
		l.onDowngrade(m)
	case proto.L1ActWBAck:
		delete(l.wb, m.Addr)
	default:
		l.violate(m.Addr, "message action %v unhandled for %v", ent.Act, m.Kind)
	}
}

// servedOf maps a data response to the service class the requestor
// observed.
func servedOf(m Msg) ServedBy {
	if m.Kind == MsgDataFromOwner {
		return ServedRemote
	}
	return m.Served
}

// onData completes an outstanding miss.
func (l *L1) onData(m Msg, grant cache.LineState) {
	ms, ok := l.mshrs[m.Addr]
	if !ok {
		l.violate(m.Addr, "data response without MSHR")
	}
	served := servedOf(m)

	var state cache.LineState
	var unblock MsgKind
	switch {
	case ms.state == TrIMD || ms.state == TrSMA || ms.state == TrEMA:
		// A data grant while waiting to modify: the directory resolved
		// our (possibly raced) request as a GETX.
		state = cache.Modified
		unblock = MsgExclusiveUnblock
	case grant == cache.Exclusive:
		state = cache.Exclusive
		unblock = MsgExclusiveUnblock
	case m.MakeForward:
		// MESIF: this requestor is the block's new Forward holder.
		state = cache.Forward
		unblock = MsgUnblock
	default:
		state = cache.Shared
		unblock = MsgUnblock
	}

	ln := l.install(m.Addr, state, m.Data, ms.wp)
	if ln == nil {
		// Every way of the set is pinned by an in-flight upgrade; hold
		// the response briefly and retry once a transaction completes.
		// grantOf recovers grant from the payload on redelivery.
		l.eng.ScheduleEvent(l.timing.L1Tag*4, l, m.payload(opL1DataRetry))
		return
	}

	delete(l.mshrs, m.Addr)
	pending := ms.pending
	if len(pending) == 0 {
		// Prefetch fill: no requestor to complete.
		l.toDir(Msg{Kind: unblock, Addr: m.Addr, Src: l.ID})
		l.freeMSHR(ms)
		return
	}

	// The initiator completes with the true service class; merged
	// accesses replay against the now-resident line.
	first := pending[0]
	if first.Write && state != cache.Modified {
		// A store merged into a transaction that ended in a shared
		// grant (it can only be a prefetch transaction: demand store
		// misses always request exclusivity). The grant cannot satisfy
		// the store, so replay everything against the S line — the
		// store re-issues as an Upgrade.
		l.toDir(Msg{Kind: unblock, Addr: m.Addr, Src: l.ID})
		for _, a := range pending {
			l.process(a)
		}
		l.freeMSHR(ms)
		return
	}
	if first.Write {
		l.applyStore(ln, m.Addr, &first)
		l.complete(first, first.Value, served)
	} else {
		l.complete(first, ln.Data, served)
	}
	l.toDir(Msg{Kind: unblock, Addr: m.Addr, Src: l.ID})
	for _, a := range pending[1:] {
		l.process(a)
	}
	l.freeMSHR(ms)
}

func (l *L1) onUpgradeAck(m Msg) {
	ms, ok := l.mshrs[m.Addr]
	if !ok || (ms.state != TrSMA && ms.state != TrEMA) {
		l.violate(m.Addr, "unexpected UpgradeAck")
	}
	ln := l.arr.Lookup(m.Addr)
	if ln == nil {
		l.violate(m.Addr, "UpgradeAck for absent line")
	}
	ln.State = cache.Modified
	ln.WP = false
	delete(l.mshrs, m.Addr)
	first := ms.pending[0]
	l.applyStore(ln, m.Addr, &first)
	l.complete(first, first.Value, ServedUpgrade)
	for _, a := range ms.pending[1:] {
		l.process(a)
	}
	l.freeMSHR(ms)
}

func (l *L1) onInv(m Msg) {
	if ln := l.arr.Lookup(m.Addr); ln != nil {
		if ln.State != cache.Shared && ln.State != cache.Owned && ln.State != cache.Forward {
			l.violate(m.Addr, "Inv for %v line", ln.State)
		}
		// Dropping a dirty Owned copy is safe here: an Inv only reaches
		// an O holder when a sharer upgrades, and every S copy equals
		// the O copy's current value.
		l.arr.Invalidate(m.Addr)
		l.Stats.Invalidations++
	}
	if ms, ok := l.mshrs[m.Addr]; ok && ms.state == TrSMA {
		// Our Upgrade lost the race; the directory will answer it with
		// Data_Exclusive. Wait as if this were a store miss.
		ms.state = TrIMD
	}
	l.toDir(Msg{Kind: MsgInvAck, Addr: m.Addr, Src: l.ID, Requestor: m.Requestor})
}

// onFwdGETS serves a remote load on behalf of the directory (Figure 1(a) /
// Figure 4(e)): send the data to the requestor's L1 and a (clean or dirty)
// copy down to the LLC, downgrading to S.
func (l *L1) onFwdGETS(m Msg) {
	l.Stats.FwdsServed++
	if ln := l.arr.Lookup(m.Addr); ln != nil && ln.State != cache.Shared {
		dirty := ln.State.Dirty()
		data := ln.Data
		// Under MESIF the requestor of a forwarded read becomes the new
		// Forward holder. The directory's write-protection view (carried
		// in the Fwd_GETS) is authoritative, so the L1's decision always
		// matches the directory's forwarder bookkeeping.
		mf := l.policy.ForwardStateFor(m.WP)
		if dirty && l.policy.OwnershipTransfer() {
			// MOESI: keep the dirty copy in state O and supply the
			// requestor directly; no LLC writeback.
			ln.State = cache.Owned
			l.respondOwnerRetained(m, data)
		} else {
			ln.State = cache.Shared
			l.respondOwner(m, data, dirty, false, false, mf)
		}
		if ms, ok := l.mshrs[m.Addr]; ok && ms.state == TrEMA {
			ms.state = TrSMA // our pending Upgrade now upgrades from S/O
		}
		return
	}
	if wbe, ok := l.wb[m.Addr]; ok {
		// The line is gone but its eviction is still in flight; serve
		// from the writeback buffer.
		l.respondOwner(m, wbe.data, wbe.dirty, true, false, l.policy.ForwardStateFor(m.WP))
		return
	}
	l.violate(m.Addr, "Fwd_GETS for unowned block")
}

// onFwdGETX surrenders the block to a writing requestor.
func (l *L1) onFwdGETX(m Msg) {
	l.Stats.FwdsServed++
	if ln := l.arr.Lookup(m.Addr); ln != nil && ln.State != cache.Shared {
		data := ln.Data
		l.arr.Invalidate(m.Addr)
		l.Stats.Invalidations++
		l.respondOwner(m, data, false, false, true)
		if ms, ok := l.mshrs[m.Addr]; ok && (ms.state == TrEMA || ms.state == TrSMA) {
			ms.state = TrIMD
		}
		return
	}
	if wbe, ok := l.wb[m.Addr]; ok {
		l.respondOwner(m, wbe.data, wbe.dirty, true, true)
		return
	}
	l.violate(m.Addr, "Fwd_GETX for unowned block")
}

// respondOwner implements the owner's half of a three-hop transaction:
// data to the requestor, a WB_Data (for GETS) to the directory.
func (l *L1) respondOwner(m Msg, data uint64, dirty, fromWB, excl bool, makeForward ...bool) {
	var f uint8
	if dirty {
		f |= pfDirty
	}
	if fromWB {
		f |= pfFromWB
	}
	if excl {
		f |= pfExcl
	}
	if len(makeForward) > 0 && makeForward[0] {
		f |= pfMakeForward
	}
	l.eng.ScheduleEvent(l.timing.RemoteL1Service, l, sim.Payload{
		Op: opL1Respond, A: uint64(m.Addr), B: data, X: int32(m.Requestor), F: f,
	})
}

// respondOwnerRetained is the MOESI variant: the requestor gets the data,
// and the directory is told the sender kept the dirty copy in state O.
func (l *L1) respondOwnerRetained(m Msg, data uint64) {
	l.eng.ScheduleEvent(l.timing.RemoteL1Service, l, sim.Payload{
		Op: opL1RespondRetained, A: uint64(m.Addr), B: data, X: int32(m.Requestor),
	})
}

func (l *L1) onDowngrade(m Msg) {
	if ln := l.arr.Lookup(m.Addr); ln != nil && ln.State == cache.Exclusive {
		ln.State = cache.Shared
	}
	if ms, ok := l.mshrs[m.Addr]; ok && ms.state == TrEMA {
		ms.state = TrSMA
	}
}

// install places data into the array, evicting as needed. Lines whose
// block has an in-flight MSHR transaction (a pending Upgrade keeps its
// line resident) are pinned and never chosen as victims; if every way of
// the set is pinned, install returns nil and the caller retries — the
// structural stall a real MSHR-locked cache exhibits.
func (l *L1) install(block cache.Addr, state cache.LineState, data uint64, wp bool) *cache.Line {
	v := l.arr.VictimFiltered(block, func(a cache.Addr) bool {
		_, pending := l.mshrs[a]
		return pending
	})
	if v == nil {
		return nil
	}
	if v.State.Valid() {
		l.evict(v, block)
	}
	l.arr.Install(v, block, state)
	v.Data = data
	v.WP = wp
	return v
}

// evict notifies the directory and parks the line in the writeback buffer
// until acknowledged.
func (l *L1) evict(v *cache.Line, setProbe cache.Addr) {
	addr := l.arr.AddrOfLine(v, setProbe)
	l.Stats.Writebacks++
	switch v.State {
	case cache.Shared:
		l.toDir(Msg{Kind: MsgPUTS, Addr: addr, Src: l.ID})
	case cache.Exclusive:
		l.wb[addr] = wbEntry{data: v.Data, dirty: false}
		l.toDir(Msg{Kind: MsgPUTX, Addr: addr, Src: l.ID, Data: v.Data})
	case cache.Modified, cache.Owned:
		l.wb[addr] = wbEntry{data: v.Data, dirty: true}
		l.toDir(Msg{Kind: MsgPUTX, Addr: addr, Src: l.ID, Data: v.Data, Dirty: true})
	case cache.Forward:
		// A MESIF forwarder may still be the target of an in-flight
		// Fwd_GETS, so it parks its (clean) copy in the writeback buffer
		// until acknowledged, like an owner.
		l.wb[addr] = wbEntry{data: v.Data, dirty: false}
		l.toDir(Msg{Kind: MsgPUTX, Addr: addr, Src: l.ID, Data: v.Data})
	}
}

// ForceInvalidate synchronously drops the block (LLC recall on inclusive-
// cache eviction). It returns the freshest local data and whether it was
// dirty.
func (l *L1) ForceInvalidate(block cache.Addr) (data uint64, dirty, had bool) {
	if ln := l.arr.Lookup(block); ln != nil {
		data, dirty, had = ln.Data, ln.State.Dirty(), true
		l.arr.Invalidate(block)
		l.Stats.Invalidations++
	}
	if wbe, ok := l.wb[block]; ok && !had {
		data, dirty, had = wbe.data, wbe.dirty, true
	}
	if ms, ok := l.mshrs[block]; ok && (ms.state == TrSMA || ms.state == TrEMA) {
		ms.state = TrIMD
	}
	return data, dirty, had
}

func (l *L1) complete(a Access, value uint64, served ServedBy) {
	l.eng.Progress()
	res := AccessResult{
		Latency: l.eng.Now() - a.start + a.Extra,
		Value:   value,
		Served:  served,
		Write:   a.Write,
		WP:      a.WP,
	}
	if l.sys.Record != nil {
		l.sys.Record(l.ID, res)
	}
	if a.Done != nil {
		a.Done(res)
	}
}

// violate panics with a typed, contained protocol violation carrying the
// full system state dump (see bank.violate). It never returns.
func (l *L1) violate(addr cache.Addr, format string, args ...any) {
	panic(&fault.Violation{
		Kind:      fault.KindProtocol,
		Cycle:     uint64(l.eng.Now()),
		Component: fmt.Sprintf("L1 %d", l.ID),
		Addr:      uint64(addr),
		Msg:       fmt.Sprintf(format, args...),
		Dump:      l.sys.DumpState(),
	})
}
