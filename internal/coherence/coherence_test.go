package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/dram"
)

// testConfig builds a small hierarchy for protocol tests.
func testConfig(p Policy, cores int) SystemConfig {
	return SystemConfig{
		NumL1:     cores,
		L1Params:  cache.Params{Name: "L1", SizeBytes: 1 << 10, Ways: 4, BlockSize: 64},
		LLCParams: cache.Params{Name: "LLC", SizeBytes: 16 << 10, Ways: 8, BlockSize: 64},
		Banks:     2,
		Timing:    DefaultTiming(),
		Policy:    p,
		DRAM:      dram.DDR3_1600_8x8(),
	}
}

func newTestSystem(t *testing.T, p Policy, cores int) *System {
	t.Helper()
	s, err := NewSystem(testConfig(p, cores))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func quiesceAndCheck(t *testing.T, s *System) {
	t.Helper()
	s.Quiesce()
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

const blockA cache.Addr = 0x10000

func TestConfigValidation(t *testing.T) {
	good := testConfig(MESI, 2)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := good
	bad.Banks = 3
	if bad.Validate() == nil {
		t.Error("non-pow2 banks accepted")
	}
	bad = good
	bad.Policy = nil
	if bad.Validate() == nil {
		t.Error("nil policy accepted")
	}
	bad = good
	bad.NumL1 = 0
	if bad.Validate() == nil {
		t.Error("zero cores accepted")
	}
	bad = good
	bad.L1Params.BlockSize = 32
	if bad.Validate() == nil {
		t.Error("block size mismatch accepted")
	}
}

// Figure 4(c): initial load of non-write-protected data ends Exclusive in
// every protocol.
func TestInitialLoadGrantsExclusive(t *testing.T) {
	for _, p := range Policies {
		s := newTestSystem(t, p, 2)
		r := s.AccessSync(0, blockA, false, false, 0)
		if r.Served != ServedMem {
			t.Errorf("%s: cold load served from %v, want Mem", p.Name(), r.Served)
		}
		if st := s.L1StateOf(0, blockA); st != cache.Exclusive {
			t.Errorf("%s: L1 state %v, want E", p.Name(), st)
		}
		if ds := s.DirStateOf(blockA); ds != DirExclusive {
			t.Errorf("%s: dir state %v, want DirE", p.Name(), ds)
		}
		quiesceAndCheck(t, s)
	}
}

// Figure 4(a): under SwiftDir the initial load of write-protected data is
// set directly to Shared (I→S) in both the L1 and the directory.
func TestSwiftDirInitialWPLoadIsShared(t *testing.T) {
	s := newTestSystem(t, SwiftDir, 2)
	s.AccessSync(0, blockA, false, true, 0)
	if st := s.L1StateOf(0, blockA); st != cache.Shared {
		t.Fatalf("L1 state %v, want S", st)
	}
	if ds := s.DirStateOf(blockA); ds != DirShared {
		t.Fatalf("dir state %v, want DirS", ds)
	}
	quiesceAndCheck(t, s)
}

// Under MESI and S-MESI, the WP bit changes nothing on the initial load.
func TestWPBitIgnoredByMESIAndSMESI(t *testing.T) {
	for _, p := range []Policy{MESI, SMESI} {
		s := newTestSystem(t, p, 2)
		s.AccessSync(0, blockA, false, true, 0)
		if st := s.L1StateOf(0, blockA); st != cache.Exclusive {
			t.Errorf("%s: L1 state %v, want E", p.Name(), st)
		}
		quiesceAndCheck(t, s)
	}
}

// The E/S timing difference (Figure 1): a remote load of an E-state block
// under MESI takes the three-hop path; an S-state block is served from the
// LLC in LLCLoadLatency cycles.
func TestMESIRemoteLoadTimingGap(t *testing.T) {
	tm := DefaultTiming()

	// E-state victim: core 1 loads cold, core 0 loads remotely.
	s := newTestSystem(t, MESI, 2)
	s.AccessSync(1, blockA, false, false, 0)
	r := s.AccessSync(0, blockA, false, false, 0)
	if r.Served != ServedRemote {
		t.Fatalf("remote load of E block served from %v, want Remote", r.Served)
	}
	if r.Latency != tm.RemoteLoadLatency() {
		t.Fatalf("E-state remote load latency %d, want %d", r.Latency, tm.RemoteLoadLatency())
	}

	// S-state: now both are sharers; a third core's load is LLC-served.
	s2 := newTestSystem(t, MESI, 3)
	s2.AccessSync(1, blockA, false, false, 0)
	s2.AccessSync(0, blockA, false, false, 0) // E->S via forward
	r2 := s2.AccessSync(2, blockA, false, false, 0)
	if r2.Served != ServedLLC {
		t.Fatalf("load of S block served from %v, want LLC", r2.Served)
	}
	if r2.Latency != tm.LLCLoadLatency() {
		t.Fatalf("S-state load latency %d, want %d", r2.Latency, tm.LLCLoadLatency())
	}

	gap := r.Latency - r2.Latency
	if gap != tm.Hop+tm.RemoteL1Service {
		t.Fatalf("E/S gap = %d, want %d", gap, tm.Hop+tm.RemoteL1Service)
	}
	quiesceAndCheck(t, s)
	quiesceAndCheck(t, s2)
}

// Figure 4(b): under SwiftDir a remote load of write-protected data is
// always served from the LLC with the constant two-hop latency — the E/S
// channel is closed.
func TestSwiftDirWPRemoteLoadConstantLatency(t *testing.T) {
	tm := DefaultTiming()
	s := newTestSystem(t, SwiftDir, 2)
	s.AccessSync(1, blockA, false, true, 0)
	r := s.AccessSync(0, blockA, false, true, 0)
	if r.Served != ServedLLC {
		t.Fatalf("served from %v, want LLC", r.Served)
	}
	if r.Latency != tm.LLCLoadLatency() {
		t.Fatalf("latency %d, want %d", r.Latency, tm.LLCLoadLatency())
	}
	// Repeats are stable.
	s.AccessSync(0, 0x20000, false, true, 0) // unrelated
	r2 := s.AccessSync(0, blockA, false, true, 0)
	if r2.Served != ServedL1 { // now locally cached in S
		t.Fatalf("re-load served from %v, want L1", r2.Served)
	}
	quiesceAndCheck(t, s)
}

// S-MESI closes the channel differently: the remote load of an E block is
// served from the LLC because E is provably clean.
func TestSMESIServesEStateFromLLC(t *testing.T) {
	tm := DefaultTiming()
	s := newTestSystem(t, SMESI, 2)
	s.AccessSync(1, blockA, false, false, 0)
	r := s.AccessSync(0, blockA, false, false, 0)
	if r.Served != ServedLLC {
		t.Fatalf("served from %v, want LLC", r.Served)
	}
	if r.Latency != tm.LLCLoadLatency() {
		t.Fatalf("latency %d, want %d", r.Latency, tm.LLCLoadLatency())
	}
	s.Quiesce() // let the Downgrade land
	if st := s.L1StateOf(1, blockA); st != cache.Shared {
		t.Fatalf("owner state %v after downgrade, want S", st)
	}
	quiesceAndCheck(t, s)
}

// Figure 3(a)/4(d): MESI and SwiftDir upgrade E->M silently in one cycle
// with no directory transition.
func TestSilentUpgrade(t *testing.T) {
	tm := DefaultTiming()
	for _, p := range []Policy{MESI, SwiftDir} {
		s := newTestSystem(t, p, 2)
		s.AccessSync(0, blockA, false, false, 0)
		before := s.BankStatsTotal().Requests
		r := s.AccessSync(0, blockA, true, false, 7)
		if r.Latency != tm.L1Tag {
			t.Errorf("%s: silent upgrade latency %d, want %d", p.Name(), r.Latency, tm.L1Tag)
		}
		if s.BankStatsTotal().Requests != before {
			t.Errorf("%s: silent upgrade generated directory traffic", p.Name())
		}
		if st := s.L1StateOf(0, blockA); st != cache.Modified {
			t.Errorf("%s: L1 state %v, want M", p.Name(), st)
		}
		// The root cause of the channel: the directory still believes E.
		if ds := s.DirStateOf(blockA); ds != DirExclusive {
			t.Errorf("%s: dir state %v, want DirE (silent)", p.Name(), ds)
		}
		if s.L1s[0].Stats.SilentUpgrades != 1 {
			t.Errorf("%s: silent upgrade not counted", p.Name())
		}
		quiesceAndCheck(t, s)
	}
}

// Figure 2 / Figure 3(b): S-MESI's explicit E->M costs a full round trip
// through EM^A and synchronizes the M state to the directory.
func TestSMESIExplicitUpgrade(t *testing.T) {
	tm := DefaultTiming()
	s := newTestSystem(t, SMESI, 2)
	s.AccessSync(0, blockA, false, false, 0)
	r := s.AccessSync(0, blockA, true, false, 7)
	want := tm.L1Tag + tm.Hop + tm.LLCTag + tm.Hop
	if r.Latency != want {
		t.Fatalf("E->M upgrade latency %d, want %d", r.Latency, want)
	}
	if r.Served != ServedUpgrade {
		t.Fatalf("served %v, want Upgrade", r.Served)
	}
	if ds := s.DirStateOf(blockA); ds != DirModifiedL1 {
		t.Fatalf("dir state %v, want DirM (synchronized)", ds)
	}
	if s.L1s[0].Stats.ExplicitUpgrades != 1 || s.L1s[0].Stats.SilentUpgrades != 0 {
		t.Fatalf("upgrade accounting wrong: %+v", s.L1s[0].Stats)
	}
	quiesceAndCheck(t, s)
}

// A store to a Shared block invalidates the other sharers in every
// protocol.
func TestStoreOnSharedInvalidatesSharers(t *testing.T) {
	for _, p := range Policies {
		s := newTestSystem(t, p, 3)
		// Make the block Shared in cores 1 and 2.
		s.AccessSync(1, blockA, false, true, 0)
		s.AccessSync(2, blockA, false, true, 0)
		s.Quiesce()
		// Core 1 stores (e.g., after a CoW the page would be private,
		// but the protocol must handle a raw store on S regardless).
		r := s.AccessSync(1, blockA, true, false, 42)
		if r.Served != ServedUpgrade && r.Served != ServedLLC && r.Served != ServedMem {
			t.Errorf("%s: store served %v", p.Name(), r.Served)
		}
		s.Quiesce()
		if st := s.L1StateOf(2, blockA); st != cache.Invalid {
			t.Errorf("%s: sharer not invalidated: %v", p.Name(), st)
		}
		if st := s.L1StateOf(1, blockA); st != cache.Modified {
			t.Errorf("%s: writer state %v, want M", p.Name(), st)
		}
		if ds := s.DirStateOf(blockA); ds != DirModifiedL1 {
			t.Errorf("%s: dir state %v, want DirM", p.Name(), ds)
		}
		quiesceAndCheck(t, s)
	}
}

// A store miss (GETX) yanks the block from a remote owner.
func TestStoreMissInvalidatesOwner(t *testing.T) {
	for _, p := range Policies {
		s := newTestSystem(t, p, 2)
		s.AccessSync(1, blockA, false, false, 0)        // owner in E
		s.AccessSync(1, blockA, true, false, 0xAA)      // now M (silent or explicit)
		r := s.AccessSync(0, blockA, true, false, 0xBB) // remote store
		s.Quiesce()
		if st := s.L1StateOf(1, blockA); st != cache.Invalid {
			t.Errorf("%s: old owner not invalidated: %v", p.Name(), st)
		}
		if st := s.L1StateOf(0, blockA); st != cache.Modified {
			t.Errorf("%s: new owner state %v, want M", p.Name(), st)
		}
		_ = r
		quiesceAndCheck(t, s)
	}
}

// Data-value invariant across a three-hop transfer: the silently modified
// value must reach a remote reader (MESI's forwarding correctness).
func TestDirtyDataForwardedOnRemoteLoad(t *testing.T) {
	for _, p := range Policies {
		s := newTestSystem(t, p, 2)
		s.AccessSync(1, blockA, false, false, 0)
		s.AccessSync(1, blockA, true, false, 0xFEED)
		r := s.AccessSync(0, blockA, false, false, 0)
		if r.Value != 0xFEED {
			t.Errorf("%s: remote load got %#x, want 0xFEED", p.Name(), r.Value)
		}
		quiesceAndCheck(t, s)
	}
}

// After a forwarded GETS the LLC must have absorbed the dirty data, so a
// third reader gets the right value from the LLC.
func TestLLCAbsorbsDirtyDataAfterForward(t *testing.T) {
	s := newTestSystem(t, MESI, 3)
	s.AccessSync(0, blockA, false, false, 0)
	s.AccessSync(0, blockA, true, false, 0xBEEF) // silent M
	s.AccessSync(1, blockA, false, false, 0)     // 3-hop; LLC absorbs
	r := s.AccessSync(2, blockA, false, false, 0)
	if r.Served != ServedLLC {
		t.Fatalf("third load served %v, want LLC", r.Served)
	}
	if r.Value != 0xBEEF {
		t.Fatalf("third load value %#x, want 0xBEEF", r.Value)
	}
	quiesceAndCheck(t, s)
}

// Evicted dirty data must survive the round trip through the LLC and
// memory. The tiny L1 (4 ways, 4 sets) forces conflict evictions.
func TestWritebackPreservesData(t *testing.T) {
	for _, p := range Policies {
		s := newTestSystem(t, p, 1)
		l1Sets := s.L1s[0].Array().Sets()
		stride := cache.Addr(l1Sets * 64)
		base := cache.Addr(0x40000)
		// Fill one set beyond capacity with dirty lines.
		for i := 0; i < 8; i++ {
			addr := base + cache.Addr(i)*stride
			s.AccessSync(0, addr, true, false, uint64(0x1000+i))
		}
		s.Quiesce()
		for i := 0; i < 8; i++ {
			addr := base + cache.Addr(i)*stride
			r := s.AccessSync(0, addr, false, false, 0)
			if r.Value != uint64(0x1000+i) {
				t.Errorf("%s: block %d read %#x, want %#x", p.Name(), i, r.Value, 0x1000+i)
			}
		}
		quiesceAndCheck(t, s)
	}
}

// Untouched memory returns its deterministic initial token.
func TestInitialMemoryToken(t *testing.T) {
	s := newTestSystem(t, MESI, 1)
	r := s.AccessSync(0, blockA, false, false, 0)
	if r.Value != initialToken(blockA) {
		t.Fatalf("cold read %#x, want %#x", r.Value, initialToken(blockA))
	}
}

// MSHR merging: concurrent accesses to one block produce a single
// directory transaction.
func TestMSHRMerging(t *testing.T) {
	s := newTestSystem(t, MESI, 1)
	completed := 0
	for i := 0; i < 4; i++ {
		s.Submit(0, Access{Addr: blockA + cache.Addr(i*8), Done: func(AccessResult) { completed++ }})
	}
	s.Quiesce()
	if completed != 4 {
		t.Fatalf("completed = %d, want 4", completed)
	}
	if got := s.BankStatsTotal().MemFetches; got != 1 {
		t.Fatalf("mem fetches = %d, want 1 (merged)", got)
	}
	quiesceAndCheck(t, s)
}

// Concurrent cross-core requests to the same block serialize at the
// directory and both complete.
func TestDirectorySerializesRacingRequests(t *testing.T) {
	for _, p := range Policies {
		s := newTestSystem(t, p, 2)
		var results []AccessResult
		s.Submit(0, Access{Addr: blockA, Done: func(r AccessResult) { results = append(results, r) }})
		s.Submit(1, Access{Addr: blockA, Done: func(r AccessResult) { results = append(results, r) }})
		s.Quiesce()
		if len(results) != 2 {
			t.Fatalf("%s: %d completions, want 2", p.Name(), len(results))
		}
		quiesceAndCheck(t, s)
	}
}

// Racing stores from two cores: exactly one final owner, dir knows it.
func TestRacingStores(t *testing.T) {
	for _, p := range Policies {
		s := newTestSystem(t, p, 2)
		s.Submit(0, Access{Addr: blockA, Write: true, Value: 0xA})
		s.Submit(1, Access{Addr: blockA, Write: true, Value: 0xB})
		s.Quiesce()
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if ds := s.DirStateOf(blockA); ds != DirModifiedL1 {
			t.Fatalf("%s: dir state %v, want DirM", p.Name(), ds)
		}
		// The surviving value is one of the two stores.
		r := s.AccessSync(0, blockA, false, false, 0)
		if r.Value != 0xA && r.Value != 0xB {
			t.Fatalf("%s: final value %#x", p.Name(), r.Value)
		}
	}
}

// A store racing an upgrade: core 0 and core 1 both share the block; both
// store concurrently. One Upgrade must be resolved as a GETX.
func TestUpgradeRace(t *testing.T) {
	for _, p := range Policies {
		s := newTestSystem(t, p, 2)
		s.AccessSync(0, blockA, false, true, 0)
		s.AccessSync(1, blockA, false, true, 0)
		s.Quiesce()
		s.Submit(0, Access{Addr: blockA, Write: true, Value: 0xC0})
		s.Submit(1, Access{Addr: blockA, Write: true, Value: 0xC1})
		s.Quiesce()
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		r := s.AccessSync(0, blockA, false, false, 0)
		if r.Value != 0xC0 && r.Value != 0xC1 {
			t.Fatalf("%s: final value %#x", p.Name(), r.Value)
		}
	}
}

// LLC capacity evictions recall L1 copies (inclusion) without losing data.
func TestLLCRecallPreservesInclusionAndData(t *testing.T) {
	cfg := testConfig(MESI, 2)
	// Tiny LLC: 2 banks x 1KB, 2 ways => heavy conflict pressure.
	cfg.LLCParams = cache.Params{Name: "LLC", SizeBytes: 1 << 10, Ways: 2, BlockSize: 64}
	s := MustNewSystem(cfg)
	base := cache.Addr(0x80000)
	// Write distinct values over more blocks than the LLC holds.
	n := 64
	for i := 0; i < n; i++ {
		s.AccessSync(0, base+cache.Addr(i*64), true, false, uint64(0x9000+i))
	}
	s.Quiesce()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.BankStatsTotal().Recalls == 0 {
		t.Fatal("expected recalls under LLC pressure")
	}
	for i := 0; i < n; i++ {
		r := s.AccessSync(0, base+cache.Addr(i*64), false, false, 0)
		if r.Value != uint64(0x9000+i) {
			t.Fatalf("block %d lost data: %#x", i, r.Value)
		}
	}
	quiesceAndCheck(t, s)
}

// Eviction race: the owner evicts (PUTX in flight) while the directory
// forwards a GETS; the owner must serve from its writeback buffer.
func TestForwardRacesWriteback(t *testing.T) {
	s := newTestSystem(t, MESI, 2)
	l1Sets := s.L1s[0].Array().Sets()
	stride := cache.Addr(l1Sets * 64)
	base := cache.Addr(0x40000)
	// Core 0: dirty block at base.
	s.AccessSync(0, base, true, false, 0x77)
	// Evict it by filling the set; at the same time core 1 reads base.
	for i := 1; i <= 4; i++ {
		s.Submit(0, Access{Addr: base + cache.Addr(i)*stride})
	}
	var got uint64
	s.Submit(1, Access{Addr: base, Done: func(r AccessResult) { got = r.Value }})
	s.Quiesce()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got != 0x77 {
		t.Fatalf("reader got %#x, want 0x77", got)
	}
}

// Determinism: identical runs produce identical final cycles and stats.
func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		s := newTestSystem(t, SwiftDir, 4)
		for i := 0; i < 100; i++ {
			port := i % 4
			addr := cache.Addr(0x1000 + (i%17)*64)
			s.Submit(port, Access{Addr: addr, Write: i%3 == 0, WP: i%5 == 0, Value: uint64(i)})
		}
		s.Quiesce()
		return uint64(s.Eng.Now()), s.BankStatsTotal().Requests
	}
	c1, r1 := run()
	c2, r2 := run()
	if c1 != c2 || r1 != r2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", c1, r1, c2, r2)
	}
}
