package coherence

import (
	"fmt"
	"testing"

	"repro/internal/cache"
)

// clusterTestConfig builds a two-level hierarchy: cores L1s partitioned
// into clusters equal clusters, each behind a hub, over 8 banks. The LLC
// is kept small enough that stress workloads exercise recalls through the
// hub records.
func clusterTestConfig(p Policy, cores, clusters int) SystemConfig {
	cfg := testConfig(p, cores)
	cfg.Clusters = clusters
	cfg.Banks = 8
	cfg.LLCParams = cache.Params{Name: "LLC", SizeBytes: 4 << 10, Ways: 4, BlockSize: 64}
	return cfg
}

// twoLevelPolicies are the policies the two-level directory supports (no
// owned state, no forward state, no bank arbitration).
var twoLevelPolicies = []Policy{MESI, SwiftDir, SMESI, SwiftDirEwp, MSI}

func TestClusterConfigValidation(t *testing.T) {
	good := clusterTestConfig(MESI, 8, 4)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	reject := func(name string, mutate func(*SystemConfig)) {
		bad := clusterTestConfig(MESI, 8, 4)
		mutate(&bad)
		if bad.Validate() == nil {
			t.Errorf("%s accepted", name)
		}
	}
	reject("65 clusters", func(c *SystemConfig) { c.NumL1, c.Clusters = 130, 65 })
	reject("non-divisible cluster count", func(c *SystemConfig) { c.NumL1, c.Clusters = 10, 4 })
	reject("65 locals per cluster", func(c *SystemConfig) { c.NumL1, c.Clusters = 130, 2 })
	reject("flat NumL1 > 64", func(c *SystemConfig) { c.NumL1, c.Clusters = 128, 0 })
	reject("MOESI with clusters", func(c *SystemConfig) { c.Policy = MOESI })
	reject("MESIF with clusters", func(c *SystemConfig) { c.Policy = MESIF })
	reject("arbitrating policy with clusters", func(c *SystemConfig) { c.Policy = PhasePriority })
	reject("NUMA distance with clusters", func(c *SystemConfig) { c.Timing.SocketCores = 2 })
}

// Two-level basic protocol behaviour: the cluster hierarchy must preserve
// the paper's state assignments end to end.
func TestTwoLevelBasicStates(t *testing.T) {
	for _, p := range twoLevelPolicies {
		s := MustNewSystem(clusterTestConfig(p, 8, 4))
		// Cold load: E everywhere except MSI (S), WP load under SwiftDir: S.
		s.AccessSync(0, blockA, false, false, 0)
		st := s.L1StateOf(0, blockA)
		if p.Name() == "MSI" {
			if st != cache.Shared {
				t.Errorf("%s: cold load state %v, want S", p.Name(), st)
			}
		} else if st != cache.Exclusive {
			t.Errorf("%s: cold load state %v, want E", p.Name(), st)
		}
		quiesceAndCheck(t, s)
	}
}

// A remote load across clusters observes a silently modified value: the
// three-hop forward path must thread both hubs.
func TestTwoLevelCrossClusterForward(t *testing.T) {
	for _, p := range twoLevelPolicies {
		s := MustNewSystem(clusterTestConfig(p, 8, 4))
		// Core 0 lives in cluster 0; core 6 lives in cluster 3.
		s.AccessSync(0, blockA, false, false, 0)
		s.AccessSync(0, blockA, true, false, 0xFEED)
		r := s.AccessSync(6, blockA, false, false, 0)
		if r.Value != 0xFEED {
			t.Errorf("%s: cross-cluster load got %#x, want 0xFEED", p.Name(), r.Value)
		}
		quiesceAndCheck(t, s)
	}
}

// The home directory tracks sharer CLUSTERS: two sharers in one cluster
// occupy one home bit and two hub record bits; a sharer in another
// cluster occupies a second home bit.
func TestTwoLevelSharersAreClusterBits(t *testing.T) {
	s := MustNewSystem(clusterTestConfig(SwiftDir, 8, 4))
	// Cores 0 and 1 are cluster 0's locals; core 2 is cluster 1's first.
	s.AccessSync(0, blockA, false, true, 0)
	s.AccessSync(1, blockA, false, true, 0)
	s.AccessSync(2, blockA, false, true, 0)
	s.Quiesce()
	v, ok := s.DirEntryOf(blockA)
	if !ok || v.State != DirShared {
		t.Fatalf("dir entry %+v ok=%v, want DirShared", v, ok)
	}
	if v.Sharers != 0b11 {
		t.Fatalf("home sharer bits %#b, want clusters {0,1} = 0b11", v.Sharers)
	}
	recorded := map[int]uint64{}
	s.ForEachHubState(func(hub int, addr cache.Addr, record uint64, pending, upReqs int) {
		if addr == blockA {
			recorded[hub] = record
		}
	})
	if recorded[0] != 0b11 || recorded[1] != 0b01 {
		t.Fatalf("hub records %v, want hub0=0b11 hub1=0b01", recorded)
	}
	quiesceAndCheck(t, s)
}

// A store on a widely shared block invalidates sharers in the writer's
// own cluster and in remote clusters, through the hubs' ack aggregation.
func TestTwoLevelStoreInvalidatesAcrossClusters(t *testing.T) {
	for _, p := range twoLevelPolicies {
		s := MustNewSystem(clusterTestConfig(p, 8, 4))
		for _, core := range []int{0, 1, 2, 5, 7} {
			s.AccessSync(core, blockA, false, true, 0)
		}
		s.Quiesce()
		s.AccessSync(1, blockA, true, false, 0x42)
		s.Quiesce()
		for _, core := range []int{0, 2, 5, 7} {
			if st := s.L1StateOf(core, blockA); st != cache.Invalid {
				t.Errorf("%s: sharer %d not invalidated: %v", p.Name(), core, st)
			}
		}
		if st := s.L1StateOf(1, blockA); st != cache.Modified {
			t.Errorf("%s: writer state %v, want M", p.Name(), st)
		}
		if ds := s.DirStateOf(blockA); ds != DirModifiedL1 {
			t.Errorf("%s: dir state %v, want DirM", p.Name(), ds)
		}
		quiesceAndCheck(t, s)
	}
}

// A non-last eviction is absorbed by the hub: the home keeps one sharer
// bit for the cluster until the last local evicts.
func TestTwoLevelHubFiltersEvictions(t *testing.T) {
	s := MustNewSystem(clusterTestConfig(MESI, 8, 4))
	l1Sets := s.L1s[0].Array().Sets()
	stride := cache.Addr(l1Sets * 64)
	// Cores 0 and 1 (cluster 0) share blockA.
	s.AccessSync(0, blockA, false, true, 0)
	s.AccessSync(1, blockA, false, true, 0)
	s.Quiesce()
	before := s.MsgCount(MsgPUTS)
	// Conflict-evict blockA out of core 1 only.
	for i := 1; i <= 4; i++ {
		s.AccessSync(1, blockA+cache.Addr(i)*stride, false, false, 0)
	}
	s.Quiesce()
	if st := s.L1StateOf(1, blockA); st != cache.Invalid {
		t.Fatalf("core 1 still holds %v after conflict pressure", st)
	}
	if got := s.MsgCount(MsgPUTS); got != before {
		t.Fatalf("non-last PUTS reached the home (count %d -> %d)", before, got)
	}
	v, _ := s.DirEntryOf(blockA)
	if v.State != DirShared || v.Sharers&1 == 0 {
		t.Fatalf("home lost cluster 0's sharer bit: %+v", v)
	}
	// Now evict it from core 0 as well: the cluster's last PUTS reaches
	// the home and the bit clears.
	for i := 1; i <= 4; i++ {
		s.AccessSync(0, blockA+cache.Addr(i)*stride, false, false, 0)
	}
	s.Quiesce()
	if got := s.MsgCount(MsgPUTS); got != before+1 {
		t.Fatalf("last PUTS not forwarded exactly once (count %d -> %d)", before, got)
	}
	if ds := s.DirStateOf(blockA); ds != DirPresent {
		t.Fatalf("dir state %v after cluster emptied, want DirPresent", ds)
	}
	quiesceAndCheck(t, s)
}

// S-MESI's explicit E->M upgrade rides the pinned-grant path through the
// hub (Upgrade_ACK has no Unblock); the hub's in-flight accounting must
// retire it on delivery or CheckInvariants trips.
func TestTwoLevelSMESIUpgradePinnedPath(t *testing.T) {
	s := MustNewSystem(clusterTestConfig(SMESI, 8, 4))
	s.AccessSync(3, blockA, false, false, 0)
	r := s.AccessSync(3, blockA, true, false, 7)
	if r.Served != ServedUpgrade {
		t.Fatalf("served %v, want Upgrade", r.Served)
	}
	if ds := s.DirStateOf(blockA); ds != DirModifiedL1 {
		t.Fatalf("dir state %v, want DirM", ds)
	}
	quiesceAndCheck(t, s)
}

// Racing stores from different clusters: one owner survives, invariants
// hold, and the value is one of the two.
func TestTwoLevelRacingStores(t *testing.T) {
	for _, p := range twoLevelPolicies {
		s := MustNewSystem(clusterTestConfig(p, 8, 4))
		s.AccessSync(0, blockA, false, true, 0)
		s.AccessSync(5, blockA, false, true, 0)
		s.Quiesce()
		s.Submit(0, Access{Addr: blockA, Write: true, Value: 0xC0})
		s.Submit(5, Access{Addr: blockA, Write: true, Value: 0xC1})
		s.Quiesce()
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		r := s.AccessSync(2, blockA, false, false, 0)
		if r.Value != 0xC0 && r.Value != 0xC1 {
			t.Fatalf("%s: final value %#x", p.Name(), r.Value)
		}
	}
}

// LLC recalls under capacity pressure must walk the hub records (not the
// cluster bits) and preserve every dirty value.
func TestTwoLevelRecallPreservesData(t *testing.T) {
	cfg := clusterTestConfig(MESI, 8, 4)
	cfg.LLCParams = cache.Params{Name: "LLC", SizeBytes: 1 << 10, Ways: 2, BlockSize: 64}
	s := MustNewSystem(cfg)
	base := cache.Addr(0x80000)
	n := 64
	for i := 0; i < n; i++ {
		s.AccessSync(i%8, base+cache.Addr(i*64), true, false, uint64(0x9000+i))
	}
	s.Quiesce()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.BankStatsTotal().Recalls == 0 {
		t.Fatal("expected recalls under LLC pressure")
	}
	for i := 0; i < n; i++ {
		r := s.AccessSync(i%8, base+cache.Addr(i*64), false, false, 0)
		if r.Value != uint64(0x9000+i) {
			t.Fatalf("block %d lost data: %#x", i, r.Value)
		}
	}
	quiesceAndCheck(t, s)
}

// The concurrent stress workload (overlapping chains per core, heavy
// cross-cluster sharing) drains clean and is byte-identical at every
// shard count, in both execution modes.
func TestTwoLevelShardedEquivalence(t *testing.T) {
	for _, p := range Policies {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			for _, noFast := range []bool{true, false} {
				base := clusterTestConfig(p, 8, 4)
				base.NoFastPath = noFast
				want := runConcurrentWorkload(t, base, 4242, 150)
				for _, shards := range []int{2, 4, 8} {
					cfg := clusterTestConfig(p, 8, 4)
					cfg.NoFastPath = noFast
					cfg.Shards = shards
					got := runConcurrentWorkload(t, cfg, 4242, 150)
					checkFingerprintsEqual(t, want, got,
						fmt.Sprintf("clusters=4/shards=%d/noFast=%v", shards, noFast))
				}
			}
		})
	}
}

// The serialized probe stream asserts the data-value invariant inline on
// a two-level machine.
func TestTwoLevelAccessSyncWorkload(t *testing.T) {
	for _, p := range twoLevelPolicies {
		cfg := clusterTestConfig(p, 8, 4)
		runSyncWorkload(t, cfg, 11, 500)
	}
}

// meshClusterConfig places the two-level machine on a 2D mesh.
func meshClusterConfig(p Policy, cores, clusters, w, h int) SystemConfig {
	cfg := clusterTestConfig(p, cores, clusters)
	cfg.Topology = "mesh"
	cfg.MeshW, cfg.MeshH = w, h
	cfg.MeshPerHop = 2
	return cfg
}

// A 1x1 mesh is a crossbar: the full system fingerprint — cycle, events,
// message counts, stats, memory image, every access result — must be
// byte-identical between the two topologies.
func TestSystemMesh1x1MatchesCrossbar(t *testing.T) {
	for _, p := range Policies {
		flat := testConfig(p, 4)
		flat.Banks = 8
		mesh := flat
		mesh.Topology = "mesh"
		mesh.MeshW, mesh.MeshH = 1, 1
		mesh.MeshPerHop = 5 // irrelevant at distance 0
		want := runConcurrentWorkload(t, flat, 777, 150)
		got := runConcurrentWorkload(t, mesh, 777, 150)
		checkFingerprintsEqual(t, want, got, p.Name()+"/mesh1x1")
	}
}

// The mesh-routed sharded fast path must match the unsharded mesh byte
// for byte: the conservative lookahead (min cross-shard hop distance)
// only bounds parallelism, never reorders delivery.
func TestTwoLevelMeshShardedEquivalence(t *testing.T) {
	for _, noFast := range []bool{true, false} {
		base := meshClusterConfig(SwiftDir, 16, 4, 4, 2)
		base.NoFastPath = noFast
		want := runConcurrentWorkload(t, base, 2026, 100)
		for _, shards := range []int{2, 4} {
			cfg := meshClusterConfig(SwiftDir, 16, 4, 4, 2)
			cfg.NoFastPath = noFast
			cfg.Shards = shards
			got := runConcurrentWorkload(t, cfg, 2026, 100)
			checkFingerprintsEqual(t, want, got,
				fmt.Sprintf("mesh4x2/shards=%d/noFast=%v", shards, noFast))
		}
	}
}

// A 64-core, 8-cluster machine on an 8x4 mesh — the scale the flat
// directory cannot represent — drains a mixed workload with invariants
// intact.
func TestTwoLevelLargeMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("large machine stress")
	}
	cfg := meshClusterConfig(SwiftDir, 64, 8, 8, 4)
	cfg.Shards = 4
	runConcurrentWorkload(t, cfg, 31337, 60)
}
