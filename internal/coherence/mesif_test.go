package coherence

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
)

// MESIF: the second reader of a clean block is served by the E-holder and
// becomes the Forward holder; later readers are served by the current
// forwarder, each becoming the new forwarder.
func TestMESIFForwardChain(t *testing.T) {
	s := newTestSystem(t, MESIF, 4)
	s.AccessSync(0, blockA, false, false, 0) // E on core 0
	r1 := s.AccessSync(1, blockA, false, false, 0)
	if r1.Served != ServedRemote {
		t.Fatalf("second reader served %v, want Remote (from E holder)", r1.Served)
	}
	s.Quiesce()
	if st := s.L1StateOf(1, blockA); st != cache.Forward {
		t.Fatalf("core 1 state %v, want F", st)
	}
	if st := s.L1StateOf(0, blockA); st != cache.Shared {
		t.Fatalf("core 0 state %v, want S", st)
	}

	r2 := s.AccessSync(2, blockA, false, false, 0)
	if r2.Served != ServedRemote {
		t.Fatalf("third reader served %v, want Remote (from forwarder)", r2.Served)
	}
	s.Quiesce()
	if st := s.L1StateOf(2, blockA); st != cache.Forward {
		t.Fatalf("core 2 state %v, want F (new forwarder)", st)
	}
	if st := s.L1StateOf(1, blockA); st != cache.Shared {
		t.Fatalf("core 1 state %v, want S (old forwarder demoted)", st)
	}
	quiesceAndCheck(t, s)
}

// When the forwarder evicts, the LLC serves the next reader, who becomes
// the new forwarder.
func TestMESIFForwarderEvictionFallsBackToLLC(t *testing.T) {
	s := newTestSystem(t, MESIF, 3)
	l1Sets := s.L1s[0].Array().Sets()
	stride := cache.Addr(l1Sets * 64)
	s.AccessSync(0, blockA, false, false, 0)
	s.AccessSync(1, blockA, false, false, 0) // core 1 = F
	s.Quiesce()
	// Evict core 1's F line.
	for i := 1; i <= 4; i++ {
		s.AccessSync(1, blockA+cache.Addr(i)*stride, false, false, 0)
	}
	s.Quiesce()
	r := s.AccessSync(2, blockA, false, false, 0)
	if r.Served != ServedLLC {
		t.Fatalf("post-eviction reader served %v, want LLC", r.Served)
	}
	s.Quiesce()
	if st := s.L1StateOf(2, blockA); st != cache.Forward {
		t.Fatalf("core 2 state %v, want F", st)
	}
	quiesceAndCheck(t, s)
}

// The MESIF hazard this suite exists for: a GETX on a block with three
// sharers must invalidate ALL of them, including those that shared before
// the latest forwarder transfer.
func TestMESIFStoreInvalidatesAllSharers(t *testing.T) {
	s := newTestSystem(t, MESIF, 4)
	s.AccessSync(0, blockA, false, false, 0)
	s.AccessSync(1, blockA, false, false, 0)
	s.AccessSync(2, blockA, false, false, 0)
	s.Quiesce()
	// Core 3 writes.
	s.AccessSync(3, blockA, true, false, 0x3333)
	s.Quiesce()
	for core := 0; core < 3; core++ {
		if st := s.L1StateOf(core, blockA); st != cache.Invalid {
			t.Fatalf("core %d survived the store: %v", core, st)
		}
	}
	// And every reader sees the new value.
	for core := 0; core < 3; core++ {
		r := s.AccessSync(core, blockA, false, false, 0)
		if r.Value != 0x3333 {
			t.Fatalf("core %d read %#x", core, r.Value)
		}
	}
	quiesceAndCheck(t, s)
}

// A store by the forwarder itself upgrades; other sharers invalidate.
func TestMESIFForwarderUpgrade(t *testing.T) {
	s := newTestSystem(t, MESIF, 3)
	s.AccessSync(0, blockA, false, false, 0)
	s.AccessSync(1, blockA, false, false, 0) // 1 = F, 0 = S
	w := s.AccessSync(1, blockA, true, false, 9)
	if w.Served != ServedUpgrade {
		t.Fatalf("forwarder store served %v", w.Served)
	}
	s.Quiesce()
	if st := s.L1StateOf(0, blockA); st != cache.Invalid {
		t.Fatalf("sharer state %v", st)
	}
	if st := s.L1StateOf(1, blockA); st != cache.Modified {
		t.Fatalf("writer state %v", st)
	}
	quiesceAndCheck(t, s)
}

// SwiftDir-MESIF: write-protected data get neither E nor F — every access
// is the constant LLC service, closing both the E/S channel and MESIF's
// residual forwarder-present channel.
func TestSwiftDirMESIFConstantWPService(t *testing.T) {
	tm := DefaultTiming()
	s := newTestSystem(t, SwiftDirMESIF, 4)
	s.AccessSync(0, blockA, false, true, 0)
	for core := 1; core < 4; core++ {
		r := s.AccessSync(core, blockA, false, true, 0)
		if r.Served != ServedLLC || r.Latency != tm.LLCLoadLatency() {
			t.Fatalf("core %d: served %v latency %d", core, r.Served, r.Latency)
		}
	}
	s.Quiesce()
	for core := 0; core < 4; core++ {
		if st := s.L1StateOf(core, blockA); st != cache.Shared {
			t.Fatalf("core %d state %v, want S (no F for WP data)", core, st)
		}
	}
	// Non-WP data keep the forwarder optimization.
	s.AccessSync(0, 0x20000, false, false, 0)
	s.AccessSync(1, 0x20000, false, false, 0)
	s.Quiesce()
	if st := s.L1StateOf(1, 0x20000); st != cache.Forward {
		t.Fatalf("non-WP reader state %v, want F", st)
	}
	quiesceAndCheck(t, s)
}

// MESIF's residual channel, demonstrated: the attacker can distinguish
// "forwarder present" (3-hop) from "forwarder absent" (2-hop) for plain
// MESIF, while SwiftDir-MESIF keeps WP data constant.
func TestMESIFResidualChannel(t *testing.T) {
	s := newTestSystem(t, MESIF, 4)
	// Line with forwarder: loads are 43 cycles.
	s.AccessSync(0, blockA, false, true, 0)
	s.AccessSync(1, blockA, false, true, 0)
	withF := s.AccessSync(2, blockA, false, true, 0)
	if withF.Latency != DefaultTiming().RemoteLoadLatency() {
		t.Fatalf("with-forwarder latency %d", withF.Latency)
	}
	// Under SwiftDir-MESIF the same sequence is flat.
	s2 := newTestSystem(t, SwiftDirMESIF, 4)
	s2.AccessSync(0, blockA, false, true, 0)
	s2.AccessSync(1, blockA, false, true, 0)
	flat := s2.AccessSync(2, blockA, false, true, 0)
	if flat.Latency != DefaultTiming().LLCLoadLatency() {
		t.Fatalf("SwiftDir-MESIF latency %d, want constant LLC", flat.Latency)
	}
}

// Sequential-consistency property for the MESIF family.
func TestMESIFSequentialConsistencyProperty(t *testing.T) {
	for _, p := range []Policy{MESIF, SwiftDirMESIF} {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			f := func(ops []uint32) bool {
				cfg := testConfig(p, 4)
				cfg.LLCParams = cache.Params{Name: "LLC", SizeBytes: 4 << 10, Ways: 4, BlockSize: 64}
				s := MustNewSystem(cfg)
				shadow := map[cache.Addr]uint64{}
				val := uint64(1)
				for _, op := range ops {
					core := int(op % 4)
					block := cache.Addr(0x100000 + (uint64(op>>2)%24)*64)
					if op&(1<<30) != 0 {
						val++
						s.AccessSync(core, block, true, false, val)
						shadow[block] = val
					} else {
						r := s.AccessSync(core, block, false, op&(1<<29) != 0, 0)
						want, ok := shadow[block]
						if !ok {
							want = initialToken(block)
						}
						if r.Value != want {
							return false
						}
					}
				}
				s.Quiesce()
				return s.CheckInvariants() == nil
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Concurrent stress for MESIF.
func TestMESIFConcurrentStress(t *testing.T) {
	cfg := testConfig(MESIF, 4)
	cfg.LLCParams = cache.Params{Name: "LLC", SizeBytes: 4 << 10, Ways: 4, BlockSize: 64}
	s := MustNewSystem(cfg)
	for i := 0; i < 1500; i++ {
		s.Submit(i%4, Access{
			Addr:  cache.Addr(0x100000 + (i%32)*64),
			Write: i%4 == 0,
			Value: uint64(i),
		})
	}
	s.Eng.RunBounded(50_000_000)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
