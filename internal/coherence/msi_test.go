package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/sim"
)

func msiSystem() *System {
	return MustNewSystem(SystemConfig{
		NumL1:     4,
		L1Params:  cache.Params{Name: "L1", SizeBytes: 4 << 10, Ways: 2, BlockSize: 64},
		LLCParams: cache.Params{Name: "LLC", SizeBytes: 64 << 10, Ways: 8, BlockSize: 64},
		Banks:     2,
		Timing:    DefaultTiming(),
		Policy:    MSI,
		DRAM:      dram.DDR3_1600_8x8(),
	})
}

// MSI has no Exclusive state: a cold load installs Shared and the
// directory never records exclusivity for a clean block.
func TestMSINoExclusiveState(t *testing.T) {
	s := msiSystem()
	r := s.AccessSync(0, 0x100, false, false, 0)
	s.Quiesce()
	if got := s.L1StateOf(0, 0x100); got != cache.Shared {
		t.Fatalf("cold load installed %v, want S", got)
	}
	if got := s.DirStateOf(0x100); got != DirShared {
		t.Fatalf("directory in %v, want DirShared", got)
	}
	if r.Served != ServedMem {
		t.Fatalf("cold load served by %v", r.Served)
	}
}

// Every store to a previously-loaded line pays the explicit Upgrade
// round trip — the tax the E state was invented to remove.
func TestMSIStorePaysUpgrade(t *testing.T) {
	s := msiSystem()
	tr := s.AttachTracer()
	s.AccessSync(0, 0x100, false, false, 0)
	s.AccessSync(0, 0x100, true, false, 7)
	s.Quiesce()
	want := "GETS Data Unblock Upgrade Upgrade_ACK"
	if got := tr.KindSeq(); got != want {
		t.Fatalf("sequence %q, want %q", got, want)
	}
	if got := s.L1StateOf(0, 0x100); got != cache.Modified {
		t.Fatalf("after store: %v, want M", got)
	}
	if s.L1s[0].Stats.SilentUpgrades != 0 {
		t.Fatal("MSI performed a silent upgrade")
	}
}

// The E/S covert-channel probe pair is indistinguishable under MSI:
// sole-reader and multi-reader blocks are both served by the LLC.
func TestMSIChannelClosed(t *testing.T) {
	s := msiSystem()
	s.AccessSync(1, 0x200, false, true, 0)
	latE := s.AccessSync(0, 0x200, false, true, 0).Latency

	s = msiSystem()
	s.AccessSync(1, 0x200, false, true, 0)
	s.AccessSync(2, 0x200, false, true, 0)
	latS := s.AccessSync(0, 0x200, false, true, 0).Latency

	if latE != latS {
		t.Fatalf("MSI leaks: exclusive probe %d vs shared probe %d", latE, latS)
	}
	if latE != DefaultTiming().LLCLoadLatency() {
		t.Fatalf("probe latency %d, want LLC service %d", latE, DefaultTiming().LLCLoadLatency())
	}
}

// Random traffic invariant: no L1 line ever reaches E under MSI, and the
// data-value and SWMR invariants hold throughout.
func TestMSINeverExclusive(t *testing.T) {
	s := msiSystem()
	rng := sim.NewRNG(0x351)
	for i := 0; i < 4000; i++ {
		port := rng.Intn(4)
		addr := cache.Addr(rng.Intn(96)) * 64
		s.AccessSync(port, addr, rng.Bool(0.3), rng.Bool(0.25), uint64(i)|1)
		for p := 0; p < 4; p++ {
			if st := s.L1StateOf(p, addr); st == cache.Exclusive {
				t.Fatalf("op %d: L1 %d holds %#x in E under MSI", i, p, addr)
			}
		}
	}
	s.Quiesce()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
