package coherence

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/sim"
)

// Sequential (one access at a time) random workload: every load must
// return the value of the most recent store to its block, across cores,
// evictions, writebacks, and recalls. This is the data-value invariant
// under a serialized request stream.
func TestSequentialConsistencyProperty(t *testing.T) {
	for _, p := range Policies {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			f := func(ops []uint32, seed uint16) bool {
				cfg := testConfig(p, 4)
				// Small LLC to exercise recalls too.
				cfg.LLCParams = cache.Params{Name: "LLC", SizeBytes: 4 << 10, Ways: 4, BlockSize: 64}
				s := MustNewSystem(cfg)
				shadow := map[cache.Addr]uint64{}
				val := uint64(seed) + 1
				for _, op := range ops {
					core := int(op % 4)
					block := cache.Addr(0x100000 + (uint64(op>>2)%24)*64)
					write := op&(1<<30) != 0
					wp := op&(1<<29) != 0 && !write
					if write {
						val++
						s.AccessSync(core, block, true, false, val)
						shadow[block] = val
					} else {
						r := s.AccessSync(core, block, false, wp, 0)
						want, ok := shadow[block]
						if !ok {
							want = initialToken(block)
						}
						if r.Value != want {
							t.Logf("load %#x on core %d: got %#x want %#x", block, core, r.Value, want)
							return false
						}
					}
				}
				s.Quiesce()
				return s.CheckInvariants() == nil
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Concurrent random workload: all accesses submitted up front (bounded
// per-core pipelining), fully overlapping transactions. Checks SWMR,
// inclusion, directory agreement, and that every access completes.
func TestConcurrentStressInvariants(t *testing.T) {
	for _, p := range Policies {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			cfg := testConfig(p, 4)
			cfg.LLCParams = cache.Params{Name: "LLC", SizeBytes: 4 << 10, Ways: 4, BlockSize: 64}
			s := MustNewSystem(cfg)
			rng := sim.NewRNG(12345)
			const perCore = 400
			completed := 0
			for c := 0; c < 4; c++ {
				c := c
				var issue func(n int)
				issue = func(n int) {
					if n == 0 {
						return
					}
					block := cache.Addr(0x100000 + uint64(rng.Intn(32))*64)
					write := rng.Bool(0.3)
					wp := !write && rng.Bool(0.4)
					s.Submit(c, Access{
						Addr: block, Write: write, WP: wp, Value: rng.Uint64(),
						Done: func(AccessResult) {
							completed++
							issue(n - 1) // keep one outstanding chain per core
						},
					})
				}
				// Three overlapping chains per core.
				issue(perCore / 2)
				issue(perCore / 4)
				issue(perCore / 4)
			}
			s.Eng.RunBounded(50_000_000)
			if completed != 4*perCore {
				t.Fatalf("completed %d/%d accesses", completed, 4*perCore)
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Under SwiftDir, a pure read-only write-protected workload must never
// create an Exclusive or Modified line anywhere, and the directory must
// never issue a forward — every service is the constant LLC path. This is
// the structural statement of the security property.
func TestSwiftDirWPWorkloadNeverExclusive(t *testing.T) {
	cfg := testConfig(SwiftDir, 4)
	s := MustNewSystem(cfg)
	rng := sim.NewRNG(99)
	for i := 0; i < 2000; i++ {
		core := rng.Intn(4)
		block := cache.Addr(0x200000 + uint64(rng.Intn(40))*64)
		s.AccessSync(core, block, false, true, 0)
	}
	s.Quiesce()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if fw := s.BankStatsTotal().Forwards; fw != 0 {
		t.Fatalf("SwiftDir WP workload caused %d forwards", fw)
	}
	for _, l1 := range s.L1s {
		l1.Array().ForEachValid(func(addr cache.Addr, ln *cache.Line) {
			if ln.State != cache.Shared {
				t.Errorf("L1 %d: block %#x in %v", l1.ID, addr, ln.State)
			}
		})
	}
}

// The same workload under MESI does create exclusivity and forwards —
// the contrast that constitutes the timing channel.
func TestMESIWPWorkloadCreatesForwards(t *testing.T) {
	cfg := testConfig(MESI, 4)
	s := MustNewSystem(cfg)
	rng := sim.NewRNG(99)
	for i := 0; i < 2000; i++ {
		core := rng.Intn(4)
		block := cache.Addr(0x200000 + uint64(rng.Intn(40))*64)
		s.AccessSync(core, block, false, true, 0)
	}
	s.Quiesce()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if fw := s.BankStatsTotal().Forwards; fw == 0 {
		t.Fatal("MESI workload caused no forwards; E-state path untested")
	}
}

// Mixed WP and non-WP concurrent traffic under SwiftDir keeps both halves
// of Table IV: WP blocks stay S; non-WP write-after-read still silently
// upgrades.
func TestSwiftDirMixedTraffic(t *testing.T) {
	cfg := testConfig(SwiftDir, 4)
	s := MustNewSystem(cfg)
	rng := sim.NewRNG(7)
	wpBase := cache.Addr(0x300000)
	privBase := cache.Addr(0x400000)
	for i := 0; i < 3000; i++ {
		core := rng.Intn(4)
		if rng.Bool(0.5) {
			block := wpBase + cache.Addr(rng.Intn(16))*64
			s.AccessSync(core, block, false, true, 0)
		} else {
			// Private per-core region: read then write.
			block := privBase + cache.Addr(core)*0x10000 + cache.Addr(rng.Intn(16))*64
			s.AccessSync(core, block, false, false, 0)
			s.AccessSync(core, block, true, false, rng.Uint64())
		}
	}
	s.Quiesce()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var silent uint64
	for _, l1 := range s.L1s {
		silent += l1.Stats.SilentUpgrades
	}
	if silent == 0 {
		t.Fatal("SwiftDir lost the silent-upgrade speedup for unshared data")
	}
}

// Eviction pressure property: any interleaving of loads/stores over a
// footprint exceeding both L1 and LLC capacity terminates, preserves
// values (sequential mode), and leaves a consistent hierarchy.
func TestCapacityPressureProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		cfg := testConfig(MESI, 2)
		cfg.L1Params = cache.Params{Name: "L1", SizeBytes: 512, Ways: 2, BlockSize: 64}
		cfg.LLCParams = cache.Params{Name: "LLC", SizeBytes: 2 << 10, Ways: 2, BlockSize: 64}
		s := MustNewSystem(cfg)
		shadow := map[cache.Addr]uint64{}
		v := uint64(1)
		for _, op := range ops {
			core := int(op) % 2
			block := cache.Addr(0x500000 + (uint64(op)>>1%96)*64)
			if op&0x100 != 0 {
				v++
				s.AccessSync(core, block, true, false, v)
				shadow[block] = v
			} else {
				r := s.AccessSync(core, block, false, false, 0)
				want, ok := shadow[block]
				if !ok {
					want = initialToken(block)
				}
				if r.Value != want {
					return false
				}
			}
		}
		s.Quiesce()
		return s.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Protocol equivalence: for any single-core workload the three protocols
// return identical values (they differ only in timing, not semantics).
func TestProtocolsValueEquivalent(t *testing.T) {
	f := func(ops []uint16) bool {
		results := make([][]uint64, 0, 3)
		for _, p := range Policies {
			s := MustNewSystem(testConfig(p, 1))
			var vals []uint64
			v := uint64(100)
			for _, op := range ops {
				block := cache.Addr(0x600000 + (uint64(op)%20)*64)
				if op&0x8000 != 0 {
					v++
					s.AccessSync(0, block, true, false, v)
				} else {
					r := s.AccessSync(0, block, false, op&0x4000 != 0, 0)
					vals = append(vals, r.Value)
				}
			}
			results = append(results, vals)
		}
		for i := 1; i < len(results); i++ {
			if len(results[i]) != len(results[0]) {
				return false
			}
			for j := range results[i] {
				if results[i][j] != results[0][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Regression: under S-MESI a Downgrade can race the owner's eviction; the
// stale PUTX must clear the (converted) sharer bit, or the directory ends
// up pointing at an Invalid L1 line.
func TestSMESIDowngradeRacesEviction(t *testing.T) {
	cfg := testConfig(SMESI, 2)
	s := MustNewSystem(cfg)
	l1Sets := s.L1s[0].Array().Sets()
	stride := cache.Addr(l1Sets * 64)
	base := cache.Addr(0x70000)

	// Core 0 owns base in E.
	s.AccessSync(0, base, false, false, 0)
	// Concurrently: core 0 evicts base (set fill) while core 1 loads it
	// (S-MESI serves from the LLC and sends a Downgrade).
	for i := 1; i <= 4; i++ {
		s.Submit(0, Access{Addr: base + cache.Addr(i)*stride})
	}
	s.Submit(1, Access{Addr: base})
	s.Quiesce()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Regression: an inclusive-LLC eviction could recall a block whose
// UpgradeAck was still in flight. ackUpgrade's fast path (no sharers to
// invalidate) registers no busy transaction, so victim selection saw the
// block as evictable; the recall flipped the requestor's MSHR to TrIMD and
// the landing ack hit the "unexpected UpgradeAck" panic. LRU hides the
// window because ackUpgrade touches the line to MRU; Random replacement
// (the lru ablation at full scale) exposed it. The fix pins addresses
// with in-flight grants against LLC victim selection.
func TestRecallRacesUpgradeAck(t *testing.T) {
	for _, p := range []Policy{MESI, SMESI, SwiftDir} {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			cfg := testConfig(p, 4)
			// Tiny Random-replacement LLC: heavy recall pressure, and any
			// way of a set can be victimized regardless of recency.
			cfg.LLCParams = cache.Params{
				Name: "LLC", SizeBytes: 2 << 10, Ways: 2, BlockSize: 64,
				Replacement: cache.Random,
			}
			s := MustNewSystem(cfg)
			rng := sim.NewRNG(4242)
			const perCore = 600
			completed := 0
			for c := 0; c < 4; c++ {
				c := c
				var issue func(n int)
				issue = func(n int) {
					if n == 0 {
						return
					}
					// Shared footprint ≫ LLC; read-then-write keeps a steady
					// stream of S→M / E→M upgrades racing the recalls.
					block := cache.Addr(0x100000 + uint64(rng.Intn(64))*64)
					s.Submit(c, Access{Addr: block, Done: func(AccessResult) {
						s.Submit(c, Access{
							Addr: block, Write: true, Value: rng.Uint64(),
							Done: func(AccessResult) {
								completed++
								issue(n - 1)
							},
						})
					}})
				}
				issue(perCore / 2)
				issue(perCore / 2)
			}
			s.Eng.RunBounded(100_000_000)
			if completed != 4*perCore {
				t.Fatalf("completed %d/%d accesses", completed, 4*perCore)
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Latency sanity across service classes: L1 < LLC < Remote < Mem.
func TestLatencyOrdering(t *testing.T) {
	s := newTestSystem(t, MESI, 2)
	cold := s.AccessSync(0, blockA, false, false, 0)   // mem
	remote := s.AccessSync(1, blockA, false, false, 0) // 3-hop
	llc := s.AccessSync(0, blockA+64, false, false, 0) // mem again
	_ = llc
	s.Quiesce()
	hit := s.AccessSync(1, blockA, false, false, 0) // now S locally
	if !(hit.Latency < DefaultTiming().LLCLoadLatency()) {
		t.Fatalf("hit latency %d not below LLC latency", hit.Latency)
	}
	if !(remote.Latency < cold.Latency) {
		t.Fatalf("remote %d not below mem %d", remote.Latency, cold.Latency)
	}
	msg := fmt.Sprintf("hit=%d remote=%d cold=%d", hit.Latency, remote.Latency, cold.Latency)
	if hit.Latency >= remote.Latency {
		t.Fatal(msg)
	}
}
