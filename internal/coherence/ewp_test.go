package coherence

import (
	"testing"

	"repro/internal/cache"
)

// The E_wp ablation (§III-B3's rejected alternative): write-protected data
// keep exclusivity on the initial load but remote loads are served from
// the LLC.

func TestEwpInitialWPLoadIsExclusive(t *testing.T) {
	s := newTestSystem(t, SwiftDirEwp, 2)
	s.AccessSync(0, blockA, false, true, 0)
	if st := s.L1StateOf(0, blockA); st != cache.Exclusive {
		t.Fatalf("L1 state %v, want E (E_wp keeps exclusivity)", st)
	}
	if ds := s.DirStateOf(blockA); ds != DirExclusive {
		t.Fatalf("dir state %v, want DirE", ds)
	}
	quiesceAndCheck(t, s)
}

// The security property: despite the E state, the remote load of a
// write-protected block is the constant LLC latency — the channel is
// closed just as under SwiftDir.
func TestEwpRemoteWPLoadServedFromLLC(t *testing.T) {
	tm := DefaultTiming()
	s := newTestSystem(t, SwiftDirEwp, 2)
	s.AccessSync(1, blockA, false, true, 0)
	r := s.AccessSync(0, blockA, false, true, 0)
	if r.Served != ServedLLC {
		t.Fatalf("served from %v, want LLC", r.Served)
	}
	if r.Latency != tm.LLCLoadLatency() {
		t.Fatalf("latency %d, want %d", r.Latency, tm.LLCLoadLatency())
	}
	s.Quiesce()
	// The owner was downgraded E_wp -> S.
	if st := s.L1StateOf(1, blockA); st != cache.Shared {
		t.Fatalf("owner state %v, want S", st)
	}
	quiesceAndCheck(t, s)
}

// Non-write-protected data keep the full MESI path under E_wp, including
// the three-hop forward (unlike S-MESI).
func TestEwpNonWPDataStillForwards(t *testing.T) {
	s := newTestSystem(t, SwiftDirEwp, 2)
	s.AccessSync(1, blockA, false, false, 0)
	r := s.AccessSync(0, blockA, false, false, 0)
	if r.Served != ServedRemote {
		t.Fatalf("non-WP remote load served from %v, want Remote (forwarded)", r.Served)
	}
	quiesceAndCheck(t, s)
}

// Silent upgrade survives under E_wp (it does not overprotect private
// data).
func TestEwpKeepsSilentUpgrade(t *testing.T) {
	tm := DefaultTiming()
	s := newTestSystem(t, SwiftDirEwp, 2)
	s.AccessSync(0, blockA, false, false, 0)
	r := s.AccessSync(0, blockA, true, false, 5)
	if r.Latency != tm.L1Tag {
		t.Fatalf("store latency %d, want silent %d", r.Latency, tm.L1Tag)
	}
	quiesceAndCheck(t, s)
}

// E_wp costs an extra message (Downgrade) on the first remote load, where
// SwiftDir needs none — the "complication" the paper avoids.
func TestEwpCostsDowngradeMessages(t *testing.T) {
	run := func(p Policy) (uint64, uint64) {
		s := newTestSystem(t, p, 2)
		s.AccessSync(1, blockA, false, true, 0)
		s.AccessSync(0, blockA, false, true, 0)
		s.Quiesce()
		return s.MsgCount(MsgDowngrade), s.TotalMessages()
	}
	ewpDown, ewpTotal := run(SwiftDirEwp)
	sdDown, sdTotal := run(SwiftDir)
	if ewpDown != 1 || sdDown != 0 {
		t.Fatalf("downgrades: ewp=%d swiftdir=%d, want 1/0", ewpDown, sdDown)
	}
	if ewpTotal <= sdTotal {
		t.Fatalf("E_wp total traffic %d not above SwiftDir's %d", ewpTotal, sdTotal)
	}
}

// The E_wp hazard, handled: a store to an E_wp line may NOT upgrade
// silently (the LLC would later serve stale data); it must take the
// explicit Upgrade path, which clears the directory's WP marking so a
// subsequent remote load is forwarded and returns the fresh value. This
// extra complication is exactly why the paper rejects E_wp in favour of
// the I→S simplification.
func TestEwpWrittenBlockForwards(t *testing.T) {
	s := newTestSystem(t, SwiftDirEwp, 2)
	s.AccessSync(1, blockA, false, true, 0) // E_wp
	w := s.AccessSync(1, blockA, true, false, 7)
	if w.Served != ServedUpgrade {
		t.Fatalf("store on E_wp line served %v, want explicit Upgrade", w.Served)
	}
	r := s.AccessSync(0, blockA, false, true, 0)
	if r.Served != ServedRemote {
		t.Fatalf("remote load of written block served %v, want Remote (forward)", r.Served)
	}
	if r.Value != 7 {
		t.Fatalf("remote load got %#x, want 7 (stale data leaked!)", r.Value)
	}
	quiesceAndCheck(t, s)
}

func TestPolicyByNameIncludesEwp(t *testing.T) {
	if PolicyByName("SwiftDir-Ewp") != SwiftDirEwp {
		t.Fatal("E_wp not resolvable by name")
	}
	if PolicyByName("nonesuch") != nil {
		t.Fatal("bogus name resolved")
	}
	if len(AllPolicies) != 9 || len(Policies) != 3 {
		t.Fatal("policy lists wrong")
	}
}
