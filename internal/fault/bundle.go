package fault

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Bundle file names. A crash bundle is a plain directory; every file is
// independently readable, and replay.json alone is enough to reproduce
// the failure with `swiftdir-sim -replay <dir>/replay.json`.
const (
	BundleViolationFile  = "violation.json"
	BundlePlanFile       = "plan.json"
	BundleConfigFile     = "config.json"
	BundleReplayFile     = "replay.json"
	BundleDiagnosticFile = "diagnostic.txt"
	BundleStackFile      = "stack.txt"
)

// BundleSpec is everything a crash bundle records. Config and Replay are
// opaque JSON documents supplied by the layer that owns those types (the
// soak runner), keeping this package free of upward dependencies.
type BundleSpec struct {
	Violation *Violation
	Plan      Plan
	Config    []byte // machine config JSON
	Replay    []byte // replay spec JSON for swiftdir-sim -replay
	Stack     []byte // captured goroutine stack, if the failure was a panic
}

// WriteBundle writes a crash bundle under root and returns the bundle
// directory. The directory name encodes the plan and failure kind so a
// sweep's bundles are self-describing at a glance.
func WriteBundle(root string, spec BundleSpec) (string, error) {
	if spec.Violation == nil {
		return "", fmt.Errorf("fault: bundle without violation")
	}
	name := fmt.Sprintf("%s-%s-c%d", spec.Plan.Name, spec.Violation.Kind, spec.Violation.Cycle)
	dir := filepath.Join(root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	vio, err := spec.Violation.MarshalIndentJSON()
	if err != nil {
		return "", err
	}
	files := []struct {
		name string
		data []byte
	}{
		{BundleViolationFile, append(vio, '\n')},
		{BundleDiagnosticFile, []byte(spec.Violation.Dump)},
	}
	if spec.Config != nil {
		files = append(files, struct {
			name string
			data []byte
		}{BundleConfigFile, spec.Config})
	}
	if spec.Replay != nil {
		files = append(files, struct {
			name string
			data []byte
		}{BundleReplayFile, spec.Replay})
	}
	if spec.Stack != nil {
		files = append(files, struct {
			name string
			data []byte
		}{BundleStackFile, spec.Stack})
	}
	for _, f := range files {
		if err := writeFileAtomic(filepath.Join(dir, f.name), f.data); err != nil {
			return "", err
		}
	}
	if err := SavePlan(filepath.Join(dir, BundlePlanFile), spec.Plan); err != nil {
		return "", err
	}
	return dir, nil
}

// writeFileAtomic writes data to path via a temp file + rename in the
// same directory (the pattern internal/resultcache uses), so a crash
// mid-dump leaves either the previous file or none — never a torn
// replay.json that `swiftdir-sim -replay` then chokes on.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// ReadBundleViolation loads a bundle's violation record; replay tests use
// it to assert byte-identical reproduction.
func ReadBundleViolation(dir string) (*Violation, error) {
	data, err := os.ReadFile(filepath.Join(dir, BundleViolationFile))
	if err != nil {
		return nil, err
	}
	var v Violation
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("fault: bundle %s: %w", dir, err)
	}
	return &v, nil
}
