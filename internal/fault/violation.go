// Package fault is the seeded fault-injection and failure-containment
// subsystem. It supplies three things the robustness story is built on:
//
//   - a Plan/Injector pair that perturbs the simulator's *timing* —
//     latency spikes and burst storms on crossbar links, transient
//     directory-bank busy windows, DRAM refresh/row-conflict storms —
//     deterministically from a seed, without ever reordering messages a
//     protocol-legal network could not reorder. Timing faults may move
//     cycles, never architectural values; the soak sweep asserts exactly
//     that (see internal/soak).
//   - a typed Violation error the protocol controllers panic with instead
//     of a bare string, carrying machine-readable state (cycle, component,
//     address) plus a structured diagnostic dump.
//   - a crash Bundle writer that turns any captured failure into a
//     directory with the config, fault plan, diagnostic, and a replay
//     spec that `swiftdir-sim -replay` re-executes deterministically.
package fault

import (
	"encoding/json"
	"fmt"
)

// Kind classifies a Violation.
type Kind string

const (
	// KindProtocol: a coherence controller observed a state/event pair the
	// protocol's transition relation does not allow.
	KindProtocol Kind = "protocol"
	// KindResource: a bounded structural resource was exhausted past its
	// retry limit (e.g. no evictable LLC way after the stall bound).
	KindResource Kind = "resource"
	// KindLiveness: the watchdog detected no forward progress within its
	// event/cycle budget.
	KindLiveness Kind = "liveness"
	// KindForced: a synthetic violation injected by a fault plan's FailAt
	// trigger, for exercising the capture/replay pipeline itself.
	KindForced Kind = "forced"
	// KindPanic: a captured panic whose value was not already a Violation —
	// an untyped failure wrapped so the bundle pipeline can still record it.
	KindPanic Kind = "panic"
	// KindCancelled: the run was aborted cooperatively — a client hung up,
	// a deadline expired, or a drain requested the stop. Not a simulator
	// failure: the result is simply incomplete, which is exactly why it
	// must never reach the result cache.
	KindCancelled Kind = "cancelled"
)

// Violation is a contained simulator failure: instead of a bare
// panic(fmt.Sprintf(...)) that kills a campaign with only a stack trace,
// the protocol hot paths panic with *Violation, which the campaign fence
// captures and the crash-bundle writer serializes. Cycle, Component, and
// Addr are machine-readable; Dump is the human-readable structured
// diagnostic (pending events, MSHRs, directory transactions, message
// tail) rendered at the instant of failure.
type Violation struct {
	Kind      Kind   `json:"kind"`
	Cycle     uint64 `json:"cycle"`
	Component string `json:"component"`      // "bank 3", "L1 0", "watchdog", "injector"
	Addr      uint64 `json:"addr,omitempty"` // block address, when one is implicated
	Msg       string `json:"msg"`
	Dump      string `json:"dump,omitempty"`
}

// Error implements error. The dump is excluded — it is often thousands of
// characters and belongs in the bundle's diagnostic file, not in a log
// line — but everything needed to identify the failure is present.
func (v *Violation) Error() string {
	if v.Addr != 0 {
		return fmt.Sprintf("fault: %s violation at cycle %d in %s: %s (addr %#x)",
			v.Kind, v.Cycle, v.Component, v.Msg, v.Addr)
	}
	return fmt.Sprintf("fault: %s violation at cycle %d in %s: %s",
		v.Kind, v.Cycle, v.Component, v.Msg)
}

// AsViolation extracts a *Violation from a recovered panic value or a
// wrapped error chain, or returns nil. Campaign panic fences hold the raw
// panic value, so both shapes appear in practice.
func AsViolation(r any) *Violation {
	switch v := r.(type) {
	case *Violation:
		return v
	case Violation:
		return &v
	case error:
		for err := v; err != nil; {
			if vio, ok := err.(*Violation); ok {
				return vio
			}
			u, ok := err.(interface{ Unwrap() error })
			if !ok {
				return nil
			}
			err = u.Unwrap()
		}
	}
	return nil
}

// MarshalIndentJSON renders the violation for a bundle file.
func (v *Violation) MarshalIndentJSON() ([]byte, error) {
	return json.MarshalIndent(v, "", "  ")
}
