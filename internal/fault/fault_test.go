package fault

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestWindowContains(t *testing.T) {
	w := Window{Start: 10, End: 20}
	for c, want := range map[uint64]bool{9: false, 10: true, 19: true, 20: false} {
		if got := w.Contains(c); got != want {
			t.Errorf("Contains(%d) = %v, want %v", c, got, want)
		}
	}
	open := Window{Start: 100}
	if open.Contains(99) || !open.Contains(100) || !open.Contains(1<<40) {
		t.Error("open-ended window misbehaves")
	}
}

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want string // substring of error, "" = valid
	}{
		{"zero", Plan{Name: "z"}, ""},
		{"good", Plan{Name: "g", LinkSpikeProb: 0.1, LinkSpikeMax: 8}, ""},
		{"prob-range", Plan{Name: "p", LinkSpikeProb: 1.5, LinkSpikeMax: 8}, "out of [0,1]"},
		{"prob-no-max", Plan{Name: "m", BankBusyProb: 0.1}, "without bank_busy_max"},
		{"storm-no-max", Plan{Name: "s", DRAMStorms: []Window{{Start: 1, End: 2}}}, "without dram_stall_max"},
		{"max-bound", Plan{Name: "b", DRAMStallProb: 0.1, DRAMStallMax: maxExtra + 1}, "exceeds bound"},
		{"empty-window", Plan{Name: "w", LinkSpikeMax: 4, LinkStorms: []Window{{Start: 5, End: 5}}}, "empty storm window"},
	}
	for _, c := range cases {
		err := c.plan.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestPlanRoundTrip(t *testing.T) {
	p := Plan{
		Name: "rt", Seed: 42,
		LinkSpikeProb: 0.25, LinkSpikeMax: 16,
		LinkStorms:    []Window{{Start: 100, End: 900}},
		DRAMStallProb: 0.1, DRAMStallMax: 64,
		FailAt: 12345,
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := SavePlan(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
	if _, err := LoadPlan(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("LoadPlan on missing file succeeded")
	}
}

func TestLoadPlanRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"name":"bad","link_spike_prob":2.0,"link_spike_max":4}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlan(path); err == nil {
		t.Error("invalid plan loaded without error")
	}
}

func TestRandomPlans(t *testing.T) {
	a := RandomPlans(8, 7)
	b := RandomPlans(8, 7)
	if !reflect.DeepEqual(a, b) {
		t.Error("RandomPlans not deterministic for same (n, seed)")
	}
	if len(a) != 8 {
		t.Fatalf("got %d plans, want 8", len(a))
	}
	if a[0].Name != "no-fault" || !a[0].Zero() {
		t.Errorf("plan 0 = %+v, want zero no-fault control", a[0])
	}
	for i, p := range a[1:] {
		if p.Zero() {
			t.Errorf("plan %d is zero: %+v", i+1, p)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("plan %d invalid: %v", i+1, err)
		}
	}
	if reflect.DeepEqual(RandomPlans(8, 8)[1:], a[1:]) {
		t.Error("different seeds produced identical plans")
	}
}

func TestInjectorValidates(t *testing.T) {
	if _, err := NewInjector(Plan{Name: "bad", LinkSpikeProb: 0.5}); err == nil {
		t.Error("NewInjector accepted invalid plan")
	}
}

func TestInjectorDeterminism(t *testing.T) {
	plan := Plan{
		Name: "det", Seed: 99,
		LinkSpikeProb: 0.3, LinkSpikeMax: 20,
		BankBusyProb: 0.2, BankBusyMax: 10,
		DRAMStallProb: 0.4, DRAMStallMax: 50,
	}
	roll := func() []sim.Cycle {
		in := MustNewInjector(plan)
		var out []sim.Cycle
		for c := sim.Cycle(0); c < 500; c++ {
			out = append(out, in.LinkDelay(0, 1, c), in.BankDelay(c), in.DRAMDelay(c, uint64(c)*64, c%2 == 0))
		}
		return out
	}
	a, b := roll(), roll()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same plan produced different delay sequences")
	}
	var any bool
	for _, d := range a {
		if d < 0 {
			t.Fatal("negative delay")
		}
		if d > 0 {
			any = true
		}
	}
	if !any {
		t.Error("plan with high probabilities injected nothing in 1500 draws")
	}
}

// Per-class RNG streams are independent: skipping every DRAM consultation
// must not change the link-delay sequence.
func TestInjectorStreamIndependence(t *testing.T) {
	plan := Plan{
		Name: "ind", Seed: 5,
		LinkSpikeProb: 0.3, LinkSpikeMax: 20,
		DRAMStallProb: 0.4, DRAMStallMax: 50,
	}
	linkOnly := func(consultDRAM bool) []sim.Cycle {
		in := MustNewInjector(plan)
		var out []sim.Cycle
		for c := sim.Cycle(0); c < 300; c++ {
			if consultDRAM {
				in.DRAMDelay(c, 0, false)
			}
			out = append(out, in.LinkDelay(0, 1, c))
		}
		return out
	}
	if !reflect.DeepEqual(linkOnly(true), linkOnly(false)) {
		t.Error("DRAM consultations perturbed the link delay stream")
	}
}

func TestInjectorStormForcesMax(t *testing.T) {
	in := MustNewInjector(Plan{
		Name: "storm", Seed: 1,
		LinkSpikeMax: 7,
		LinkStorms:   []Window{{Start: 100, End: 200}},
	})
	if d := in.LinkDelay(0, 1, 50); d != 0 {
		t.Errorf("delay %d before storm, want 0", d)
	}
	for c := sim.Cycle(100); c < 200; c += 25 {
		if d := in.LinkDelay(0, 1, c); d != 7 {
			t.Errorf("delay %d during storm at %d, want 7", d, c)
		}
	}
	if d := in.LinkDelay(0, 1, 200); d != 0 {
		t.Errorf("delay %d after storm, want 0", d)
	}
	if in.Stats.LinkFaults != 4 || in.Stats.ExtraCycles != 28 {
		t.Errorf("stats = %+v, want 4 faults / 28 extra cycles", in.Stats)
	}
}

func TestInjectorZeroPlanInert(t *testing.T) {
	in := MustNewInjector(Plan{Name: "zero"})
	for c := sim.Cycle(0); c < 100; c++ {
		if in.LinkDelay(0, 1, c)|in.BankDelay(c)|in.DRAMDelay(c, 0, false) != 0 {
			t.Fatal("zero plan injected a delay")
		}
	}
	if in.Stats != (InjectorStats{}) {
		t.Errorf("zero plan recorded stats %+v", in.Stats)
	}
}

func TestInjectorFailAt(t *testing.T) {
	in := MustNewInjector(Plan{Name: "fail", FailAt: 1000})
	in.Diagnose = func() string { return "STATE DUMP" }
	if d := in.LinkDelay(0, 1, 999); d != 0 {
		t.Fatalf("delay %d before FailAt", d)
	}
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		in.BankDelay(1000)
	}()
	v := AsViolation(recovered)
	if v == nil {
		t.Fatalf("recovered %v, want *Violation", recovered)
	}
	if v.Kind != KindForced || v.Cycle != 1000 || v.Dump != "STATE DUMP" {
		t.Errorf("violation %+v, want forced at 1000 with dump", v)
	}
	// One-shot: subsequent consultations do not re-fire.
	if d := in.DRAMDelay(2000, 0, false); d != 0 {
		t.Errorf("post-failure delay %d", d)
	}
}

func TestInjectorHangAtWedgesEngine(t *testing.T) {
	eng := sim.NewEngine()
	in := MustNewInjector(Plan{Name: "hang", HangAt: 10})
	in.Attach(eng)
	in.LinkDelay(0, 1, 10) // arms the wedge at the engine's current time
	// The wedge must keep the queue non-empty forever: run a bounded number
	// of events and verify there is still a pending event afterwards.
	for i := 0; i < 50; i++ {
		if !eng.Step() {
			t.Fatalf("engine drained after %d steps despite wedge", i)
		}
	}
	if eng.Pending() == 0 {
		t.Error("no pending events after wedge ran")
	}
}

func TestViolationError(t *testing.T) {
	v := &Violation{Kind: KindProtocol, Cycle: 77, Component: "bank 2", Addr: 0x1c0, Msg: "boom"}
	got := v.Error()
	for _, frag := range []string{"protocol", "cycle 77", "bank 2", "boom", "0x1c0"} {
		if !strings.Contains(got, frag) {
			t.Errorf("Error() = %q missing %q", got, frag)
		}
	}
	noAddr := &Violation{Kind: KindLiveness, Cycle: 1, Component: "watchdog", Msg: "stuck"}
	if strings.Contains(noAddr.Error(), "addr") {
		t.Errorf("Error() = %q mentions addr for addr-less violation", noAddr.Error())
	}
}

func TestAsViolation(t *testing.T) {
	v := &Violation{Kind: KindResource, Cycle: 3, Component: "bank 0", Msg: "x"}
	if AsViolation(v) != v {
		t.Error("pointer passthrough failed")
	}
	if got := AsViolation(*v); got == nil || got.Cycle != 3 {
		t.Error("value extraction failed")
	}
	wrapped := fmt.Errorf("job failed: %w", error(v))
	if AsViolation(wrapped) != v {
		t.Error("unwrap chain extraction failed")
	}
	if AsViolation("plain string panic") != nil || AsViolation(errors.New("plain")) != nil || AsViolation(nil) != nil {
		t.Error("non-violation values misclassified")
	}
}

func TestBundleRoundTrip(t *testing.T) {
	root := t.TempDir()
	v := &Violation{
		Kind: KindForced, Cycle: 4242, Component: "injector",
		Msg: "forced violation (plan fail_at trigger)", Dump: "line1\nline2\n",
	}
	plan := Plan{Name: "bundle-test", Seed: 9, FailAt: 4242}
	dir, err := WriteBundle(root, BundleSpec{
		Violation: v,
		Plan:      plan,
		Config:    []byte(`{"cores":4}`),
		Replay:    []byte(`{"benchmark":"mcf"}`),
		Stack:     []byte("goroutine 1 [running]:\n"),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{
		BundleViolationFile, BundlePlanFile, BundleConfigFile,
		BundleReplayFile, BundleDiagnosticFile, BundleStackFile,
	} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("bundle missing %s: %v", f, err)
		}
	}
	got, err := ReadBundleViolation(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, v) {
		t.Errorf("violation round trip:\n got %+v\nwant %+v", got, v)
	}
	diag, err := os.ReadFile(filepath.Join(dir, BundleDiagnosticFile))
	if err != nil || string(diag) != v.Dump {
		t.Errorf("diagnostic file = %q, err %v", diag, err)
	}
	gotPlan, err := LoadPlan(filepath.Join(dir, BundlePlanFile))
	if err != nil || !reflect.DeepEqual(gotPlan, plan) {
		t.Errorf("bundle plan = %+v, err %v", gotPlan, err)
	}
	if _, err := WriteBundle(root, BundleSpec{Plan: plan}); err == nil {
		t.Error("bundle without violation accepted")
	}
}

func TestBundleOptionalFilesOmitted(t *testing.T) {
	dir, err := WriteBundle(t.TempDir(), BundleSpec{
		Violation: &Violation{Kind: KindLiveness, Cycle: 1, Component: "watchdog", Msg: "stuck"},
		Plan:      Plan{Name: "min"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{BundleConfigFile, BundleReplayFile, BundleStackFile} {
		if _, err := os.Stat(filepath.Join(dir, f)); err == nil {
			t.Errorf("optional file %s written without data", f)
		}
	}
}
