package fault

import (
	"repro/internal/sim"
)

// InjectorStats counts injected faults for reporting.
type InjectorStats struct {
	LinkFaults  uint64
	BankFaults  uint64
	DRAMFaults  uint64
	MeshFaults  uint64 // per-directed-link mesh spikes/storms
	HubFaults   uint64 // cluster-hub busy windows
	ExtraCycles uint64 // total injected delay across all classes
}

// Injector applies a Plan to the timing layers. Each fault class draws
// from its own forked RNG stream, so the delays injected into (say) the
// crossbar are a deterministic function of the plan alone — independent
// of whether the DRAM hook happened to be consulted in between — and a
// replay with the same plan reproduces the same perturbation exactly.
//
// An Injector is single-simulation state: build one per machine, never
// share across concurrent campaign jobs.
type Injector struct {
	plan Plan
	eng  *sim.Engine

	link *sim.RNG
	bank *sim.RNG
	dram *sim.RNG
	mesh *sim.RNG
	hub  *sim.RNG

	failed    bool // FailAt already fired
	hangArmed bool // HangAt wedge already scheduled

	// Diagnose, if non-nil, renders the owning system's structured state
	// dump; the forced-violation path calls it so a synthetic failure
	// carries the same diagnostic a real one would. The coherence system
	// wires it at attach time.
	Diagnose func() string

	Stats InjectorStats
}

// NewInjector validates the plan and builds an injector for it.
func NewInjector(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	base := sim.NewRNG(plan.Seed ^ 0xFA17)
	// Fork order is load-bearing: link, bank, dram predate the mesh and
	// hub streams, which are appended after so plans written before the
	// scaled classes existed replay with the exact same perturbation.
	return &Injector{
		plan: plan,
		link: base.Fork(),
		bank: base.Fork(),
		dram: base.Fork(),
		mesh: base.Fork(),
		hub:  base.Fork(),
	}, nil
}

// MustNewInjector is NewInjector for static plans.
func MustNewInjector(plan Plan) *Injector {
	in, err := NewInjector(plan)
	if err != nil {
		panic(err)
	}
	return in
}

// Plan returns the plan the injector was built from.
func (in *Injector) Plan() Plan { return in.plan }

// Attach binds the injector to the engine it perturbs. Required only for
// the HangAt trigger, which schedules its wedge event on the engine.
func (in *Injector) Attach(eng *sim.Engine) { in.eng = eng }

// force fires the plan's FailAt/HangAt triggers. It runs at every hook
// consultation, so the forced failure lands at the first timing decision
// at or after the trigger cycle — a deterministic point of the run.
func (in *Injector) force(now sim.Cycle) {
	if in.plan.FailAt > 0 && !in.failed && uint64(now) >= in.plan.FailAt {
		in.failed = true
		v := &Violation{
			Kind:      KindForced,
			Cycle:     uint64(now),
			Component: "injector",
			Msg:       "forced violation (plan fail_at trigger)",
		}
		if in.Diagnose != nil {
			v.Dump = in.Diagnose()
		}
		panic(v)
	}
	if in.plan.HangAt > 0 && !in.hangArmed && uint64(now) >= in.plan.HangAt && in.eng != nil {
		in.hangArmed = true
		in.eng.ScheduleEvent(0, in, sim.Payload{})
	}
}

// Handle implements sim.Handler: the HangAt wedge. It reschedules itself
// every cycle without ever marking progress, so the event queue never
// drains and no quiesce completes — the liveness failure mode the
// watchdog exists to catch.
func (in *Injector) Handle(p sim.Payload) {
	in.eng.ScheduleEvent(1, in, p)
}

// draw rolls one fault class: the storm windows force the maximum delay,
// otherwise prob gates a uniform draw in [1, max].
func (in *Injector) draw(rng *sim.RNG, now sim.Cycle, prob float64, max uint64, storms []Window, count *uint64) sim.Cycle {
	for _, w := range storms {
		if w.Contains(uint64(now)) {
			*count++
			in.Stats.ExtraCycles += max
			return sim.Cycle(max)
		}
	}
	if prob > 0 && rng.Bool(prob) {
		d := 1 + rng.Uint64n(max)
		*count++
		in.Stats.ExtraCycles += d
		return sim.Cycle(d)
	}
	return 0
}

// LinkDelay is the crossbar hook: extra occupancy for a message admitted
// at now. It is shaped to match interconnect.Config.Extra.
func (in *Injector) LinkDelay(src, dst int, now sim.Cycle) sim.Cycle {
	in.force(now)
	return in.draw(in.link, now, in.plan.LinkSpikeProb, in.plan.LinkSpikeMax, in.plan.LinkStorms, &in.Stats.LinkFaults)
}

// BankDelay is the directory-bank hook: extra local service latency
// before a bank response enters the crossbar (a transient busy window).
func (in *Injector) BankDelay(now sim.Cycle) sim.Cycle {
	in.force(now)
	return in.draw(in.bank, now, in.plan.BankBusyProb, in.plan.BankBusyMax, in.plan.BankStorms, &in.Stats.BankFaults)
}

// DRAMDelay is the memory-controller hook: extra queueing delay before a
// request starts (a refresh or row-conflict storm). It is shaped to match
// dram.Memory.Extra.
func (in *Injector) DRAMDelay(now sim.Cycle, addr uint64, write bool) sim.Cycle {
	in.force(now)
	return in.draw(in.dram, now, in.plan.DRAMStallProb, in.plan.DRAMStallMax, in.plan.DRAMStorms, &in.Stats.DRAMFaults)
}

// MeshDelay is the mesh hook: extra occupancy on one directed link (the
// mesh's router*4+dir id) as a message traverses it. It is shaped to
// match interconnect.MeshConfig.LinkExtra. Storms may be pinned to a
// link subset, so the storm path checks the link id before forcing the
// maximum; the probabilistic path draws per traversal from the mesh
// stream.
func (in *Injector) MeshDelay(link int, now sim.Cycle) sim.Cycle {
	in.force(now)
	for _, s := range in.plan.MeshStorms {
		if s.Contains(uint64(now)) && s.appliesTo(link) {
			in.Stats.MeshFaults++
			in.Stats.ExtraCycles += in.plan.MeshSpikeMax
			return sim.Cycle(in.plan.MeshSpikeMax)
		}
	}
	if p := in.plan.MeshSpikeProb; p > 0 && in.mesh.Bool(p) {
		d := 1 + in.mesh.Uint64n(in.plan.MeshSpikeMax)
		in.Stats.MeshFaults++
		in.Stats.ExtraCycles += d
		return sim.Cycle(d)
	}
	return 0
}

// HubDelay is the cluster-hub hook: extra local service latency before
// the hub forwards a message (a transient busy window at the two-level
// directory's aggregation point).
func (in *Injector) HubDelay(hub int, now sim.Cycle) sim.Cycle {
	in.force(now)
	return in.draw(in.hub, now, in.plan.HubBusyProb, in.plan.HubBusyMax, in.plan.HubStorms, &in.Stats.HubFaults)
}
