package fault

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/sim"
)

// Window is a half-open cycle interval [Start, End) during which a fault
// storm is active. End == 0 means the window never closes.
type Window struct {
	Start uint64 `json:"start"`
	End   uint64 `json:"end,omitempty"`
}

// Contains reports whether cycle c falls inside the window.
func (w Window) Contains(c uint64) bool {
	return c >= w.Start && (w.End == 0 || c < w.End)
}

// maxExtra bounds any single injected delay. Keeping spikes far below the
// watchdog's cycle budget guarantees a fault plan can slow the simulation
// but never wedge it — an injected delay is always finite, so every
// message still arrives and the blocking protocol still unblocks.
const maxExtra = 1 << 20

// Plan is a JSON-serializable fault schedule. All faults are timing-only
// and protocol-legal:
//
//   - Link faults add extra crossbar occupancy per message (spikes with
//     probability LinkSpikeProb, or unconditionally during LinkStorms).
//     Occupancy flows through the same per-port bookkeeping as jitter, so
//     per-port-pair delivery order is preserved.
//   - Bank faults extend the directory bank's local service latency
//     before a response enters the crossbar (a transient busy window).
//   - DRAM faults push a memory request's start time (an extra
//     refresh/row-conflict stall at the controller).
//
// FailAt and HangAt are forcing triggers for exercising the containment
// pipeline itself: FailAt raises a synthetic KindForced Violation at the
// first injector consultation at or after that cycle; HangAt wedges the
// event engine with a self-rescheduling no-progress handler, which an
// armed watchdog must catch.
type Plan struct {
	Name string `json:"name"`
	Seed uint64 `json:"seed"`

	LinkSpikeProb float64  `json:"link_spike_prob,omitempty"`
	LinkSpikeMax  uint64   `json:"link_spike_max,omitempty"`
	LinkStorms    []Window `json:"link_storms,omitempty"`

	BankBusyProb float64  `json:"bank_busy_prob,omitempty"`
	BankBusyMax  uint64   `json:"bank_busy_max,omitempty"`
	BankStorms   []Window `json:"bank_storms,omitempty"`

	DRAMStallProb float64  `json:"dram_stall_prob,omitempty"`
	DRAMStallMax  uint64   `json:"dram_stall_max,omitempty"`
	DRAMStorms    []Window `json:"dram_storms,omitempty"`

	FailAt uint64 `json:"fail_at,omitempty"`
	HangAt uint64 `json:"hang_at,omitempty"`
}

// Zero reports whether the plan injects nothing at all.
func (p Plan) Zero() bool {
	return p.LinkSpikeProb == 0 && len(p.LinkStorms) == 0 &&
		p.BankBusyProb == 0 && len(p.BankStorms) == 0 &&
		p.DRAMStallProb == 0 && len(p.DRAMStorms) == 0 &&
		p.FailAt == 0 && p.HangAt == 0
}

// Validate checks the plan.
func (p Plan) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"link_spike_prob", p.LinkSpikeProb},
		{"bank_busy_prob", p.BankBusyProb},
		{"dram_stall_prob", p.DRAMStallProb},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("fault: plan %q: %s = %v out of [0,1]", p.Name, f.name, f.v)
		}
	}
	for _, m := range []struct {
		name string
		v    uint64
	}{
		{"link_spike_max", p.LinkSpikeMax},
		{"bank_busy_max", p.BankBusyMax},
		{"dram_stall_max", p.DRAMStallMax},
	} {
		if m.v > maxExtra {
			return fmt.Errorf("fault: plan %q: %s = %d exceeds bound %d", p.Name, m.name, m.v, maxExtra)
		}
	}
	if p.LinkSpikeProb > 0 && p.LinkSpikeMax == 0 {
		return fmt.Errorf("fault: plan %q: link_spike_prob without link_spike_max", p.Name)
	}
	if p.BankBusyProb > 0 && p.BankBusyMax == 0 {
		return fmt.Errorf("fault: plan %q: bank_busy_prob without bank_busy_max", p.Name)
	}
	if p.DRAMStallProb > 0 && p.DRAMStallMax == 0 {
		return fmt.Errorf("fault: plan %q: dram_stall_prob without dram_stall_max", p.Name)
	}
	if len(p.LinkStorms) > 0 && p.LinkSpikeMax == 0 {
		return fmt.Errorf("fault: plan %q: link_storms without link_spike_max", p.Name)
	}
	if len(p.BankStorms) > 0 && p.BankBusyMax == 0 {
		return fmt.Errorf("fault: plan %q: bank_storms without bank_busy_max", p.Name)
	}
	if len(p.DRAMStorms) > 0 && p.DRAMStallMax == 0 {
		return fmt.Errorf("fault: plan %q: dram_storms without dram_stall_max", p.Name)
	}
	for _, ws := range [][]Window{p.LinkStorms, p.BankStorms, p.DRAMStorms} {
		for _, w := range ws {
			if w.End != 0 && w.End <= w.Start {
				return fmt.Errorf("fault: plan %q: empty storm window [%d,%d)", p.Name, w.Start, w.End)
			}
		}
	}
	return nil
}

// LoadPlan reads and validates a JSON fault plan.
func LoadPlan(path string) (Plan, error) {
	var p Plan
	data, err := os.ReadFile(path)
	if err != nil {
		return p, err
	}
	if err := json.Unmarshal(data, &p); err != nil {
		return p, fmt.Errorf("fault: plan %s: %w", path, err)
	}
	return p, p.Validate()
}

// SavePlan writes a plan as indented JSON.
func SavePlan(path string, p Plan) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RandomPlans derives n distinct fault plans from a seed for a soak
// sweep. Plan 0 is always the no-fault control; the rest mix spike
// probabilities, storm windows, and fault classes pseudo-randomly but
// reproducibly — the same (n, seed) always yields the same plans.
func RandomPlans(n int, seed uint64) []Plan {
	plans := make([]Plan, 0, n)
	plans = append(plans, Plan{Name: "no-fault", Seed: seed})
	rng := sim.NewRNG(seed | 1)
	for i := 1; i < n; i++ {
		p := Plan{
			Name: fmt.Sprintf("plan-%02d", i),
			Seed: rng.Uint64(),
		}
		// Each class joins the plan independently; a plan with no class at
		// all is re-rolled into a link-spike plan so every non-control plan
		// injects something.
		if rng.Bool(0.7) {
			p.LinkSpikeProb = 0.01 + rng.Float64()*0.15
			p.LinkSpikeMax = 1 + rng.Uint64n(48)
		}
		if rng.Bool(0.5) {
			p.BankBusyProb = 0.01 + rng.Float64()*0.10
			p.BankBusyMax = 1 + rng.Uint64n(32)
		}
		if rng.Bool(0.5) {
			p.DRAMStallProb = 0.02 + rng.Float64()*0.20
			p.DRAMStallMax = 1 + rng.Uint64n(200)
		}
		if rng.Bool(0.4) {
			start := rng.Uint64n(200_000)
			p.LinkStorms = append(p.LinkStorms, Window{
				Start: start, End: start + 1_000 + rng.Uint64n(20_000),
			})
			if p.LinkSpikeMax == 0 {
				p.LinkSpikeMax = 1 + rng.Uint64n(48)
			}
		}
		if rng.Bool(0.3) {
			start := rng.Uint64n(200_000)
			p.DRAMStorms = append(p.DRAMStorms, Window{
				Start: start, End: start + 1_000 + rng.Uint64n(50_000),
			})
			if p.DRAMStallMax == 0 {
				p.DRAMStallMax = 1 + rng.Uint64n(200)
			}
		}
		if p.Zero() {
			p.LinkSpikeProb = 0.05
			p.LinkSpikeMax = 1 + rng.Uint64n(16)
		}
		plans = append(plans, p)
	}
	return plans
}
