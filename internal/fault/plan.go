package fault

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/sim"
)

// Window is a half-open cycle interval [Start, End) during which a fault
// storm is active. End == 0 means the window never closes.
type Window struct {
	Start uint64 `json:"start"`
	End   uint64 `json:"end,omitempty"`
}

// Contains reports whether cycle c falls inside the window.
func (w Window) Contains(c uint64) bool {
	return c >= w.Start && (w.End == 0 || c < w.End)
}

// MeshStorm is a storm window optionally pinned to specific directed
// mesh links (router*4 + direction indexes, the mesh's own link ids).
// An empty Links slice storms every link — the mesh analogue of a plain
// Window.
type MeshStorm struct {
	Window
	Links []int `json:"links,omitempty"`
}

// appliesTo reports whether the storm covers directed link li.
func (s MeshStorm) appliesTo(li int) bool {
	if len(s.Links) == 0 {
		return true
	}
	for _, l := range s.Links {
		if l == li {
			return true
		}
	}
	return false
}

// maxExtra bounds any single injected delay. Keeping spikes far below the
// watchdog's cycle budget guarantees a fault plan can slow the simulation
// but never wedge it — an injected delay is always finite, so every
// message still arrives and the blocking protocol still unblocks.
const maxExtra = 1 << 20

// Plan is a JSON-serializable fault schedule. All faults are timing-only
// and protocol-legal:
//
//   - Link faults add extra crossbar occupancy per message (spikes with
//     probability LinkSpikeProb, or unconditionally during LinkStorms).
//     Occupancy flows through the same per-port bookkeeping as jitter, so
//     per-port-pair delivery order is preserved.
//   - Bank faults extend the directory bank's local service latency
//     before a response enters the crossbar (a transient busy window).
//   - DRAM faults push a memory request's start time (an extra
//     refresh/row-conflict stall at the controller).
//
// FailAt and HangAt are forcing triggers for exercising the containment
// pipeline itself: FailAt raises a synthetic KindForced Violation at the
// first injector consultation at or after that cycle; HangAt wedges the
// event engine with a self-rescheduling no-progress handler, which an
// armed watchdog must catch.
type Plan struct {
	Name string `json:"name"`
	Seed uint64 `json:"seed"`

	LinkSpikeProb float64  `json:"link_spike_prob,omitempty"`
	LinkSpikeMax  uint64   `json:"link_spike_max,omitempty"`
	LinkStorms    []Window `json:"link_storms,omitempty"`

	BankBusyProb float64  `json:"bank_busy_prob,omitempty"`
	BankBusyMax  uint64   `json:"bank_busy_max,omitempty"`
	BankStorms   []Window `json:"bank_storms,omitempty"`

	DRAMStallProb float64  `json:"dram_stall_prob,omitempty"`
	DRAMStallMax  uint64   `json:"dram_stall_max,omitempty"`
	DRAMStorms    []Window `json:"dram_storms,omitempty"`

	// Mesh faults add extra occupancy on individual directed mesh links
	// (spikes per link traversal, or unconditionally during MeshStorms,
	// each of which may be pinned to a set of directed links). They flow
	// through the mesh's per-link bookkeeping, so XY-route FIFO order is
	// preserved. Ignored on crossbar topologies.
	MeshSpikeProb float64     `json:"mesh_spike_prob,omitempty"`
	MeshSpikeMax  uint64      `json:"mesh_spike_max,omitempty"`
	MeshStorms    []MeshStorm `json:"mesh_storms,omitempty"`

	// Hub faults extend a cluster hub's local service latency before it
	// forwards a message (a transient busy window at the two-level
	// directory's aggregation point). Ignored on flat-directory configs.
	HubBusyProb float64  `json:"hub_busy_prob,omitempty"`
	HubBusyMax  uint64   `json:"hub_busy_max,omitempty"`
	HubStorms   []Window `json:"hub_storms,omitempty"`

	FailAt uint64 `json:"fail_at,omitempty"`
	HangAt uint64 `json:"hang_at,omitempty"`
}

// Zero reports whether the plan injects nothing at all.
func (p Plan) Zero() bool {
	return p.LinkSpikeProb == 0 && len(p.LinkStorms) == 0 &&
		p.BankBusyProb == 0 && len(p.BankStorms) == 0 &&
		p.DRAMStallProb == 0 && len(p.DRAMStorms) == 0 &&
		p.MeshSpikeProb == 0 && len(p.MeshStorms) == 0 &&
		p.HubBusyProb == 0 && len(p.HubStorms) == 0 &&
		p.FailAt == 0 && p.HangAt == 0
}

// Validate checks the plan.
func (p Plan) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"link_spike_prob", p.LinkSpikeProb},
		{"bank_busy_prob", p.BankBusyProb},
		{"dram_stall_prob", p.DRAMStallProb},
		{"mesh_spike_prob", p.MeshSpikeProb},
		{"hub_busy_prob", p.HubBusyProb},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("fault: plan %q: %s = %v out of [0,1]", p.Name, f.name, f.v)
		}
	}
	for _, m := range []struct {
		name string
		v    uint64
	}{
		{"link_spike_max", p.LinkSpikeMax},
		{"bank_busy_max", p.BankBusyMax},
		{"dram_stall_max", p.DRAMStallMax},
		{"mesh_spike_max", p.MeshSpikeMax},
		{"hub_busy_max", p.HubBusyMax},
	} {
		if m.v > maxExtra {
			return fmt.Errorf("fault: plan %q: %s = %d exceeds bound %d", p.Name, m.name, m.v, maxExtra)
		}
	}
	if p.LinkSpikeProb > 0 && p.LinkSpikeMax == 0 {
		return fmt.Errorf("fault: plan %q: link_spike_prob without link_spike_max", p.Name)
	}
	if p.BankBusyProb > 0 && p.BankBusyMax == 0 {
		return fmt.Errorf("fault: plan %q: bank_busy_prob without bank_busy_max", p.Name)
	}
	if p.DRAMStallProb > 0 && p.DRAMStallMax == 0 {
		return fmt.Errorf("fault: plan %q: dram_stall_prob without dram_stall_max", p.Name)
	}
	if len(p.LinkStorms) > 0 && p.LinkSpikeMax == 0 {
		return fmt.Errorf("fault: plan %q: link_storms without link_spike_max", p.Name)
	}
	if len(p.BankStorms) > 0 && p.BankBusyMax == 0 {
		return fmt.Errorf("fault: plan %q: bank_storms without bank_busy_max", p.Name)
	}
	if len(p.DRAMStorms) > 0 && p.DRAMStallMax == 0 {
		return fmt.Errorf("fault: plan %q: dram_storms without dram_stall_max", p.Name)
	}
	if p.MeshSpikeProb > 0 && p.MeshSpikeMax == 0 {
		return fmt.Errorf("fault: plan %q: mesh_spike_prob without mesh_spike_max", p.Name)
	}
	if len(p.MeshStorms) > 0 && p.MeshSpikeMax == 0 {
		return fmt.Errorf("fault: plan %q: mesh_storms without mesh_spike_max", p.Name)
	}
	if p.HubBusyProb > 0 && p.HubBusyMax == 0 {
		return fmt.Errorf("fault: plan %q: hub_busy_prob without hub_busy_max", p.Name)
	}
	if len(p.HubStorms) > 0 && p.HubBusyMax == 0 {
		return fmt.Errorf("fault: plan %q: hub_storms without hub_busy_max", p.Name)
	}
	for _, ws := range [][]Window{p.LinkStorms, p.BankStorms, p.DRAMStorms, p.HubStorms} {
		for _, w := range ws {
			if w.End != 0 && w.End <= w.Start {
				return fmt.Errorf("fault: plan %q: empty storm window [%d,%d)", p.Name, w.Start, w.End)
			}
		}
	}
	for _, s := range p.MeshStorms {
		if s.End != 0 && s.End <= s.Start {
			return fmt.Errorf("fault: plan %q: empty storm window [%d,%d)", p.Name, s.Start, s.End)
		}
		for _, l := range s.Links {
			if l < 0 {
				return fmt.Errorf("fault: plan %q: negative mesh storm link %d", p.Name, l)
			}
		}
	}
	return nil
}

// LoadPlan reads and validates a JSON fault plan.
func LoadPlan(path string) (Plan, error) {
	var p Plan
	data, err := os.ReadFile(path)
	if err != nil {
		return p, err
	}
	if err := json.Unmarshal(data, &p); err != nil {
		return p, fmt.Errorf("fault: plan %s: %w", path, err)
	}
	return p, p.Validate()
}

// SavePlan writes a plan as indented JSON. The write is atomic (temp
// file + rename) so a crash mid-save never leaves a torn plan.json that
// a later replay chokes on.
func SavePlan(path string, p Plan) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(path, append(data, '\n'))
}

// RandomPlans derives n distinct fault plans from a seed for a soak
// sweep. Plan 0 is always the no-fault control; the rest mix spike
// probabilities, storm windows, and fault classes pseudo-randomly but
// reproducibly — the same (n, seed) always yields the same plans.
func RandomPlans(n int, seed uint64) []Plan {
	plans := make([]Plan, 0, n)
	plans = append(plans, Plan{Name: "no-fault", Seed: seed})
	rng := sim.NewRNG(seed | 1)
	for i := 1; i < n; i++ {
		p := Plan{
			Name: fmt.Sprintf("plan-%02d", i),
			Seed: rng.Uint64(),
		}
		// Each class joins the plan independently; a plan with no class at
		// all is re-rolled into a link-spike plan so every non-control plan
		// injects something.
		if rng.Bool(0.7) {
			p.LinkSpikeProb = 0.01 + rng.Float64()*0.15
			p.LinkSpikeMax = 1 + rng.Uint64n(48)
		}
		if rng.Bool(0.5) {
			p.BankBusyProb = 0.01 + rng.Float64()*0.10
			p.BankBusyMax = 1 + rng.Uint64n(32)
		}
		if rng.Bool(0.5) {
			p.DRAMStallProb = 0.02 + rng.Float64()*0.20
			p.DRAMStallMax = 1 + rng.Uint64n(200)
		}
		if rng.Bool(0.4) {
			start := rng.Uint64n(200_000)
			p.LinkStorms = append(p.LinkStorms, Window{
				Start: start, End: start + 1_000 + rng.Uint64n(20_000),
			})
			if p.LinkSpikeMax == 0 {
				p.LinkSpikeMax = 1 + rng.Uint64n(48)
			}
		}
		if rng.Bool(0.3) {
			start := rng.Uint64n(200_000)
			p.DRAMStorms = append(p.DRAMStorms, Window{
				Start: start, End: start + 1_000 + rng.Uint64n(50_000),
			})
			if p.DRAMStallMax == 0 {
				p.DRAMStallMax = 1 + rng.Uint64n(200)
			}
		}
		if p.Zero() {
			p.LinkSpikeProb = 0.05
			p.LinkSpikeMax = 1 + rng.Uint64n(16)
		}
		plans = append(plans, p)
	}
	return plans
}

// RandomScaledPlans derives n fault plans targeting the scaled machine's
// layers — directed mesh links and cluster hubs — plus a DRAM class so
// the sweep still crosses the memory boundary. meshLinks is the number
// of directed links in the target mesh (W*H*4); storms pinned to a link
// subset draw their ids from it, and 0 disables pinning. Plan 0 is the
// no-fault control, and the same (n, seed, meshLinks) always yields the
// same plans. Kept separate from RandomPlans so existing sweeps remain
// byte-compatible.
func RandomScaledPlans(n int, seed uint64, meshLinks int) []Plan {
	plans := make([]Plan, 0, n)
	plans = append(plans, Plan{Name: "no-fault", Seed: seed})
	rng := sim.NewRNG(seed | 1)
	for i := 1; i < n; i++ {
		p := Plan{
			Name: fmt.Sprintf("scaled-%02d", i),
			Seed: rng.Uint64(),
		}
		if rng.Bool(0.7) {
			p.MeshSpikeProb = 0.01 + rng.Float64()*0.15
			p.MeshSpikeMax = 1 + rng.Uint64n(32)
		}
		if rng.Bool(0.6) {
			p.HubBusyProb = 0.01 + rng.Float64()*0.10
			p.HubBusyMax = 1 + rng.Uint64n(24)
		}
		if rng.Bool(0.4) {
			start := rng.Uint64n(200_000)
			s := MeshStorm{Window: Window{
				Start: start, End: start + 1_000 + rng.Uint64n(20_000),
			}}
			if meshLinks > 0 && rng.Bool(0.5) {
				// Pin the storm to a handful of directed links: the
				// asymmetric case a whole-fabric storm cannot exercise.
				k := int(1 + rng.Uint64n(4))
				for j := 0; j < k; j++ {
					s.Links = append(s.Links, int(rng.Uint64n(uint64(meshLinks))))
				}
			}
			p.MeshStorms = append(p.MeshStorms, s)
			if p.MeshSpikeMax == 0 {
				p.MeshSpikeMax = 1 + rng.Uint64n(32)
			}
		}
		if rng.Bool(0.3) {
			start := rng.Uint64n(200_000)
			p.HubStorms = append(p.HubStorms, Window{
				Start: start, End: start + 1_000 + rng.Uint64n(30_000),
			})
			if p.HubBusyMax == 0 {
				p.HubBusyMax = 1 + rng.Uint64n(24)
			}
		}
		if rng.Bool(0.3) {
			p.DRAMStallProb = 0.02 + rng.Float64()*0.20
			p.DRAMStallMax = 1 + rng.Uint64n(200)
		}
		if p.Zero() {
			p.MeshSpikeProb = 0.05
			p.MeshSpikeMax = 1 + rng.Uint64n(16)
		}
		plans = append(plans, p)
	}
	return plans
}
