package sim

import "context"

// CancelFromContext binds a fresh Cancel token to ctx: when ctx is done,
// the token fires with the context's error as the reason. The returned
// stop function releases the binding (idempotent); callers must invoke
// it once the run completes so a long-lived request context does not pin
// the token's watcher.
//
// The token is an ordinary *Cancel — arm it on any number of machines
// via core.Config.Cancel; every engine observing it aborts at its next
// executed event.
func CancelFromContext(ctx context.Context) (*Cancel, func()) {
	c := &Cancel{}
	stop := context.AfterFunc(ctx, func() {
		reason := "context cancelled"
		if err := context.Cause(ctx); err != nil {
			reason = err.Error()
		}
		c.Request(reason)
	})
	return c, func() { stop() }
}
