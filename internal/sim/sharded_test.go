package sim

import (
	"fmt"
	"strings"
	"testing"
)

// --- synthetic traffic model ---------------------------------------------
//
// A mesh of nodes exchanging events. Each node lives on a shard, keeps a
// running hash of everything it observes, and on every event consults its
// private RNG to schedule follow-up traffic: self-sends at any delay,
// cross-shard sends at >= lookahead (the crossbar contract), global events
// touching shared state, and deferred side ops against a shared log. The
// exact same model code runs on one Engine (where SendRemote and
// ScheduleGlobalEvent degenerate to ScheduleEvent) and on a Sharded
// engine; equivalence of every node hash, the shared state, the side-op
// log, the executed-event count, and the final cycle is the byte-identity
// claim at engine level.

type meshNode struct {
	id     int
	eng    *Engine
	mesh   *mesh
	rng    *RNG
	hash   uint64
	budget int
}

type mesh struct {
	nodes     []*meshNode
	shardOf   []int
	lookahead Cycle
	sharded   bool

	// Shared state: only touched by global events and replayed side ops,
	// both of which the driver serializes.
	globalHash uint64
	sideLog    []uint64
}

const (
	meshOpDeliver uint8 = 1
	meshOpGlobal  uint8 = 2
)

func (n *meshNode) Handle(p Payload) {
	now := uint64(n.eng.Now())
	n.hash = n.hash*1099511628211 ^ now ^ p.A ^ uint64(p.X)<<32
	if n.budget <= 0 {
		return
	}
	n.budget--
	for i := 0; i < 1+int(n.rng.Uint64n(3)); i++ {
		r := n.rng.Uint64()
		dst := n.mesh.nodes[int(r%uint64(len(n.mesh.nodes)))]
		p := Payload{A: r, X: int32(n.id), Op: meshOpDeliver}
		switch {
		case r%13 == 0:
			// Global event: stop-the-world work against shared state.
			n.eng.ScheduleGlobalEvent(n.mesh.lookahead+Cycle(r%5), n.mesh, Payload{A: r, X: int32(n.id), Op: meshOpGlobal})
		case r%17 == 0 && n.mesh.sharded:
			// Deferred side op against the shared log; the sequential run
			// applies it inline, the sharded run replays it at the
			// barrier in merge order.
			n.eng.DeferOp(r, now, 1)
		case r%17 == 0:
			n.mesh.applySideOp(Cycle(now), r, now, 1)
		case n.mesh.shardOf[dst.id] != n.mesh.shardOf[n.id]:
			// Cross-shard: must respect the lookahead. r%3 == 0 lands
			// exactly on the epoch horizon — the boundary case.
			n.eng.SendRemote(n.mesh.shardOf[dst.id], n.mesh.lookahead+Cycle(r%3), dst, p)
		default:
			// Same shard: any delay, including zero (same-cycle churn).
			dst.eng.ScheduleEvent(Cycle(r%7), dst, p)
		}
	}
}

// Handle on the mesh itself is the global-event handler: it mutates shared
// state and schedules fresh traffic from driver context at any delay.
func (m *mesh) Handle(p Payload) {
	m.globalHash = m.globalHash*31 ^ p.A ^ uint64(p.X)
	src := m.nodes[int(p.A%uint64(len(m.nodes)))]
	r := p.A % 11
	dst := m.nodes[int((p.A>>8)%uint64(len(m.nodes)))]
	dst.eng.ScheduleEvent(Cycle(r), dst, Payload{A: p.A ^ 0xbeef, X: int32(src.id), Op: meshOpDeliver})
}

func (m *mesh) applySideOp(now Cycle, a, b uint64, op uint8) {
	m.sideLog = append(m.sideLog, uint64(now)*2654435761^a^b^uint64(op))
}

// buildMesh wires nodes either onto one sequential engine or onto a
// Sharded engine's shards. The shard topology (`topo`) is fixed
// independently of how many engines actually run, so the model makes
// byte-identical decisions in both modes: the sequential reference run
// sees the same "cross-shard" delays, it just executes them on one engine.
func buildMesh(nodes, shards, topo, budget int, lookahead Cycle, seed uint64) (*mesh, *Engine, *Sharded) {
	m := &mesh{lookahead: lookahead, shardOf: make([]int, nodes), sharded: shards > 1}
	var seq *Engine
	var sh *Sharded
	if shards > 1 {
		if shards != topo {
			panic("sharded mesh must run on its own topology")
		}
		sh = NewSharded(shards, lookahead)
		sh.OnReplayOp(m.applySideOp)
	} else {
		seq = NewEngine()
	}
	for i := 0; i < nodes; i++ {
		m.shardOf[i] = i % topo
		n := &meshNode{id: i, mesh: m, rng: NewRNG(seed + uint64(i)*0x9e37), budget: budget}
		if sh != nil {
			n.eng = sh.Shard(m.shardOf[i])
		} else {
			n.eng = seq
		}
		m.nodes = append(m.nodes, n)
	}
	for i, n := range m.nodes {
		n.eng.ScheduleEvent(Cycle(i%9), n, Payload{A: uint64(i) * 7919, X: -1, Op: meshOpDeliver})
	}
	return m, seq, sh
}

type meshResult struct {
	hashes     []uint64
	globalHash uint64
	sideLog    []uint64
	executed   uint64
	end        Cycle
}

func runMesh(t testing.TB, nodes, shards, topo, budget int, lookahead Cycle, seed uint64) meshResult {
	m, seq, sh := buildMesh(nodes, shards, topo, budget, lookahead, seed)
	var res meshResult
	if sh != nil {
		res.end = sh.Run()
		res.executed = sh.Executed()
		if sh.Pending() != 0 {
			t.Fatalf("sharded run left %d pending events", sh.Pending())
		}
	} else {
		res.end = seq.Run()
		res.executed = seq.Executed()
	}
	for _, n := range m.nodes {
		res.hashes = append(res.hashes, n.hash)
	}
	res.globalHash = m.globalHash
	res.sideLog = m.sideLog
	return res
}

func checkMeshEqual(t *testing.T, want, got meshResult, label string) {
	t.Helper()
	if want.end != got.end {
		t.Errorf("%s: final cycle = %d, want %d", label, got.end, want.end)
	}
	if want.executed != got.executed {
		t.Errorf("%s: executed = %d, want %d", label, got.executed, want.executed)
	}
	if want.globalHash != got.globalHash {
		t.Errorf("%s: global hash = %#x, want %#x", label, got.globalHash, want.globalHash)
	}
	for i := range want.hashes {
		if want.hashes[i] != got.hashes[i] {
			t.Errorf("%s: node %d hash = %#x, want %#x", label, i, got.hashes[i], want.hashes[i])
		}
	}
	if len(want.sideLog) != len(got.sideLog) {
		t.Fatalf("%s: side log length %d, want %d", label, len(got.sideLog), len(want.sideLog))
	}
	for i := range want.sideLog {
		if want.sideLog[i] != got.sideLog[i] {
			t.Fatalf("%s: side log[%d] = %#x, want %#x", label, i, got.sideLog[i], want.sideLog[i])
		}
	}
}

func TestShardedMatchesSequential(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		for _, lookahead := range []Cycle{1, 3, 16} {
			for seed := uint64(1); seed <= 5; seed++ {
				label := fmt.Sprintf("shards=%d/L=%d/seed=%d", shards, lookahead, seed)
				want := runMesh(t, 16, 1, shards, 400, lookahead, seed)
				got := runMesh(t, 16, shards, shards, 400, lookahead, seed)
				checkMeshEqual(t, want, got, label)
			}
		}
	}
}

func TestShardedFewerNodesThanShards(t *testing.T) {
	want := runMesh(t, 3, 1, 8, 200, 4, 99)
	got := runMesh(t, 3, 8, 8, 200, 4, 99)
	checkMeshEqual(t, want, got, "3 nodes on 8 shards")
}

func TestShardedRunTwice(t *testing.T) {
	// A drained sharded engine must accept fresh driver-context work and
	// stay equivalent across a second run (Quiesce-style reuse).
	m, _, sh := buildMesh(8, 4, 4, 100, 3, 7)
	sh.Run()
	h1 := m.nodes[0].hash
	for _, n := range m.nodes {
		n.budget = 50
		n.eng.ScheduleEvent(1, n, Payload{A: 42, X: -1, Op: meshOpDeliver})
	}
	sh.Run()
	if m.nodes[0].hash == h1 {
		t.Fatal("second run did not execute")
	}

	ms, seq, _ := buildMesh(8, 1, 4, 100, 3, 7)
	seq.Run()
	for _, n := range ms.nodes {
		n.budget = 50
		n.eng.ScheduleEvent(1, n, Payload{A: 42, X: -1, Op: meshOpDeliver})
	}
	seq.Run()
	for i := range ms.nodes {
		if ms.nodes[i].hash != m.nodes[i].hash {
			t.Fatalf("node %d diverged across second run", i)
		}
	}
}

func TestShardedRunWhile(t *testing.T) {
	m, _, sh := buildMesh(8, 4, 4, 10_000, 3, 21)
	stop := false
	m.nodes[3].budget = 5 // node 3 quiesces early; use its hash settling as the condition
	sh.RunWhile(func() bool { return !stop && sh.Executed() < 5000 })
	if sh.Executed() == 0 {
		t.Fatal("RunWhile executed nothing")
	}
	// The condition is checked at barriers: the run may overshoot but must
	// have stopped long before draining the full budget.
	if sh.Pending() == 0 {
		t.Fatal("RunWhile drained the queue despite the stop condition")
	}
	sh.Run() // drain cleanly so worker goroutines exit
}

func TestShardedCrossShardLookaheadViolationPanics(t *testing.T) {
	sh := NewSharded(2, 4)
	bad := &violator{dst: 1, delay: 3} // < lookahead 4
	bad.eng = sh.Shard(0)
	sh.Shard(0).ScheduleEvent(1, bad, Payload{})
	sh.Shard(1).ScheduleEvent(1, &sink{}, Payload{}) // give shard 1 work so the epoch runs
	defer func() {
		v, ok := recover().(*LookaheadViolation)
		if !ok {
			t.Fatalf("expected *LookaheadViolation, got %v", v)
		}
		if v.Shard != 0 || v.Dst != 1 || v.Delay != 3 || v.Lookahead != 4 {
			t.Fatalf("violation fields = %+v", v)
		}
		if !strings.Contains(v.Error(), "lookahead violation") {
			t.Fatalf("error text = %q", v.Error())
		}
	}()
	sh.Run()
}

func TestShardedGlobalLookaheadViolationPanics(t *testing.T) {
	sh := NewSharded(2, 4)
	bad := &violator{dst: -1, delay: 0}
	bad.eng = sh.Shard(0)
	sh.Shard(0).ScheduleEvent(1, bad, Payload{})
	defer func() {
		v, ok := recover().(*LookaheadViolation)
		if !ok {
			t.Fatalf("expected *LookaheadViolation, got %v", v)
		}
		if v.Dst != -1 || !strings.Contains(v.Error(), "global barrier") {
			t.Fatalf("violation = %+v", v)
		}
	}()
	sh.Run()
}

type violator struct {
	eng   *Engine
	dst   int
	delay Cycle
}

func (v *violator) Handle(Payload) {
	if v.dst < 0 {
		v.eng.ScheduleGlobalEvent(v.delay, v, Payload{})
		return
	}
	v.eng.SendRemote(v.dst, v.delay, v, Payload{})
}

type sink struct{}

func (*sink) Handle(Payload) {}

// wedger re-schedules itself forever without marking progress, and parks a
// cross-shard send in the merge buffer so trip dumps must surface it. The
// remote handler is a sink owned by the peer shard: a handler must only
// touch the engine it executes on.
type wedger struct {
	eng  *Engine
	peer int
	drop sink
}

func (w *wedger) Handle(p Payload) {
	w.eng.ScheduleEvent(1, w, p)
	if w.peer >= 0 {
		w.eng.SendRemote(w.peer, 100, &w.drop, Payload{Op: 77})
	}
}

func TestShardedWatchdogTripsOnWedgedShard(t *testing.T) {
	sh := NewSharded(4, 3)
	w := &wedger{eng: sh.Shard(1), peer: 2}
	sh.Shard(1).ScheduleEvent(1, w, Payload{})
	sh.Shard(0).ScheduleEvent(1, &sink{}, Payload{}) // healthy shard, quiesces at once
	var got TripInfo
	sh.ArmWatchdog(WatchdogConfig{MaxEvents: 500}, func(ti TripInfo) {
		got = ti
		panic("tripped")
	})
	defer func() {
		if r := recover(); r != "tripped" {
			t.Fatalf("expected trip panic, got %v", r)
		}
		if got.EventsSinceProgress < 500 {
			t.Fatalf("EventsSinceProgress = %d, want >= 500", got.EventsSinceProgress)
		}
		if !strings.Contains(got.PendingDump, "wedger") {
			t.Fatalf("dump missing wedged shard's handler:\n%s", got.PendingDump)
		}
		// The cross-shard sends parked in shard 1's merge buffer must
		// appear in the dump (op=77 payloads).
		if !strings.Contains(got.PendingDump, "Op=77") && !strings.Contains(got.PendingDump, "op=77") {
			t.Fatalf("dump missing merge-buffer events:\n%s", got.PendingDump)
		}
	}()
	sh.Run()
}

func TestShardedWatchdogProgressSuppressesTrip(t *testing.T) {
	// A self-rescheduling node that marks progress every event never
	// trips, and the run ends when its budget drains.
	sh := NewSharded(2, 3)
	n := &progresser{eng: sh.Shard(0), left: 5000}
	sh.Shard(0).ScheduleEvent(1, n, Payload{})
	sh.ArmWatchdog(WatchdogConfig{MaxEvents: 100}, func(ti TripInfo) {
		t.Fatalf("unexpected trip: %+v", ti)
	})
	sh.Run()
	if n.left != 0 {
		t.Fatalf("budget not drained: %d", n.left)
	}
}

type progresser struct {
	eng  *Engine
	left int
}

func (p *progresser) Handle(pl Payload) {
	p.eng.Progress()
	if p.left--; p.left > 0 {
		p.eng.ScheduleEvent(1, p, pl)
	}
}

func TestShardedForEachPendingIncludesMergeBuffers(t *testing.T) {
	// White-box: park an event in shard 0's cross-shard merge buffer and
	// check Engine.ForEachPending surfaces it.
	sh := NewSharded(2, 3)
	e := sh.Shard(0)
	ss := e.ss
	ss.inEpoch = true
	ss.limitWhen, ss.limitKey = 10, 0
	e.SendRemote(1, 5, &sink{}, Payload{Op: 42})
	var ops []uint8
	e.ForEachPending(func(rel Cycle, h Handler, p Payload, isClosure bool) {
		ops = append(ops, p.Op)
	})
	if len(ops) != 1 || ops[0] != 42 {
		t.Fatalf("ForEachPending saw %v, want the buffered op 42", ops)
	}
	ss.inEpoch = false
}

func TestShardedRejectsBadConfig(t *testing.T) {
	for _, tc := range []struct {
		shards    int
		lookahead Cycle
	}{
		{0, 3}, {65, 3}, {4, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSharded(%d, %d) did not panic", tc.shards, tc.lookahead)
				}
			}()
			NewSharded(tc.shards, tc.lookahead)
		}()
	}
}

func TestShardedAccessors(t *testing.T) {
	sh := NewSharded(4, 7)
	if sh.NumShards() != 4 || sh.Lookahead() != 7 {
		t.Fatal("accessor mismatch")
	}
	if sh.Shard(2).ShardID() != 2 {
		t.Fatalf("ShardID = %d", sh.Shard(2).ShardID())
	}
	if sh.Shard(2).Sharded() != sh {
		t.Fatal("Sharded() owner mismatch")
	}
	plain := NewEngine()
	if plain.ShardID() != 0 || plain.Sharded() != nil {
		t.Fatal("plain engine shard accessors")
	}
	per := sh.ExecutedPerShard()
	if len(per) != 4 {
		t.Fatalf("ExecutedPerShard len = %d", len(per))
	}
}
