package sim

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// tickHandler reschedules itself and counts executions — a healthy,
// progress-marking workload for cancellation to interrupt.
type tickHandler struct {
	eng *Engine
	n   int
}

func (h *tickHandler) Handle(p Payload) {
	h.n++
	h.eng.Progress()
	h.eng.ScheduleEvent(1, h, p)
}

func TestCancelNilTokenIsInert(t *testing.T) {
	var c *Cancel
	c.Request("ignored")
	if c.Requested() || c.Reason() != "" {
		t.Error("nil token reports a fired state")
	}
	// Arming nil disarms; the engine must stay runnable.
	eng := NewEngine()
	eng.ArmCancel(nil, nil)
	done := false
	eng.Schedule(5, func() { done = true })
	eng.Run()
	if !done {
		t.Error("engine with disarmed cancel did not run")
	}
}

func TestCancelOneShotReason(t *testing.T) {
	c := NewCancel()
	if c.Requested() {
		t.Fatal("fresh token already fired")
	}
	c.Request("first")
	c.Request("second")
	if !c.Requested() || c.Reason() != "first" {
		t.Errorf("Reason() = %q, want the first request to win", c.Reason())
	}
}

// cancelAbort is the sentinel a test trip panics to stop the run — the
// same shape core.NewMachine uses (it panics a *fault.Violation). A trip
// that returns normally is a notification only and leaves the engine
// running.
type cancelAbort struct{}

// recoverCancelAbort swallows a cancelAbort panic and re-panics anything
// else. Use as `defer recoverCancelAbort(t)` around a run expected to be
// torn down by a panicking cancel trip.
func recoverCancelAbort(t *testing.T) {
	t.Helper()
	if r := recover(); r != nil {
		if _, ok := r.(cancelAbort); !ok {
			panic(r)
		}
	}
}

// The sequential engine: a token fired mid-run must trip at the next
// event boundary with the executed count so far and a watchdog-style
// pending dump, then disarm. The trip aborts by panicking, as the
// production wiring does.
func TestCancelAbortsSequentialRun(t *testing.T) {
	eng := NewEngine()
	c := NewCancel()
	var info *CancelInfo
	eng.ArmCancel(c, func(ci CancelInfo) { info = &ci; panic(cancelAbort{}) })

	h := &tickHandler{eng: eng}
	eng.ScheduleEvent(0, h, Payload{Op: 9, A: 0xbeef})
	eng.Schedule(50, func() { c.Request("client went away") })
	func() {
		defer recoverCancelAbort(t)
		eng.RunUntil(200)
	}()

	if info == nil {
		t.Fatal("cancel never tripped")
	}
	if info.Reason != "client went away" {
		t.Errorf("reason = %q", info.Reason)
	}
	if info.Executed == 0 || h.n == 0 {
		t.Error("trip before any event executed")
	}
	if h.n > 60 {
		t.Errorf("handler ran %d times after a cycle-50 cancel", h.n)
	}
	if info.Pending != 1 || !strings.Contains(info.PendingDump, "tickHandler") {
		t.Errorf("pending dump missing the parked workload:\n%s", info.PendingDump)
	}
	// The trip disarmed the token; running on must not re-fire.
	info = nil
	eng.RunUntil(300)
	if info != nil {
		t.Error("disarmed cancel tripped again")
	}
}

// Cancellation and the watchdog ride one frame: arming both (in either
// order) keeps both live, a fired token wins the check site, and
// re-arming the watchdog must not drop the token.
func TestCancelComposesWithWatchdog(t *testing.T) {
	eng := NewEngine()
	c := NewCancel()
	var cancelled, tripped bool
	eng.ArmCancel(c, func(CancelInfo) { cancelled = true })
	eng.ArmWatchdog(WatchdogConfig{MaxEvents: 1 << 40}, func(TripInfo) { tripped = true })
	eng.ArmWatchdog(WatchdogConfig{MaxEvents: 1 << 40}, func(TripInfo) { tripped = true }) // re-arm keeps the token

	h := &tickHandler{eng: eng}
	eng.ScheduleEvent(0, h, Payload{})
	eng.Schedule(10, func() { c.Request("deadline") })
	eng.RunUntil(100)
	if !cancelled {
		t.Error("token armed alongside a watchdog never tripped")
	}
	if tripped {
		t.Error("watchdog tripped below budget")
	}

	// And the reverse: a watchdog trip must leave an armed token live.
	eng2 := NewEngine()
	c2 := NewCancel()
	var cancelled2 bool
	trips := 0
	eng2.ArmCancel(c2, func(CancelInfo) { cancelled2 = true })
	eng2.ArmWatchdog(WatchdogConfig{MaxEvents: 25}, func(TripInfo) { trips++ })
	w := &wedgeHandler{eng: eng2}
	eng2.ScheduleEvent(0, w, Payload{})
	eng2.Schedule(200, func() { c2.Request("after the trip") })
	eng2.RunUntil(400)
	if trips == 0 {
		t.Fatal("watchdog never tripped on the wedge")
	}
	if !cancelled2 {
		t.Error("cancel token was dropped by the watchdog trip")
	}
}

// Sharded epoch mode: the token fires inside a worker epoch, the driver
// surfaces one combined trip, and the run stops having executed strictly
// fewer events than the uncancelled run.
func TestCancelAbortsShardedEpochRun(t *testing.T) {
	build := func(c *Cancel) (*Sharded, []*tickHandler, *CancelInfo, *bool) {
		sh := NewSharded(2, 4)
		var info CancelInfo
		fired := false
		if c != nil {
			sh.ArmCancel(c, func(ci CancelInfo) { info = ci; fired = true; panic(cancelAbort{}) })
		}
		hs := make([]*tickHandler, 2)
		for i := range hs {
			e := sh.Shard(i)
			hs[i] = &tickHandler{eng: e}
			e.ScheduleEvent(Cycle(i), hs[i], Payload{Op: uint8(i)})
		}
		return sh, hs, &info, &fired
	}

	// Control: bounded run to a fixed horizon.
	shc, ctrl, _, _ := build(nil)
	shc.RunWhile(func() bool { return shc.Now() < 500 })
	total := ctrl[0].n + ctrl[1].n

	c := NewCancel()
	sh, hs, info, fired := build(c)
	sh.Shard(0).Schedule(40, func() { c.Request("drain") })
	func() {
		defer recoverCancelAbort(t)
		sh.RunWhile(func() bool { return sh.Now() < 500 })
	}()
	if !*fired {
		t.Fatal("sharded cancel never tripped")
	}
	if info.Reason != "drain" {
		t.Errorf("reason = %q", info.Reason)
	}
	got := hs[0].n + hs[1].n
	if got == 0 || got >= total {
		t.Errorf("cancelled run executed %d ticks, control %d; want 0 < got < control", got, total)
	}
	if !strings.Contains(info.PendingDump, "tickHandler") {
		t.Errorf("merged pending dump missing parked work:\n%s", info.PendingDump)
	}
}

// Sequential-stepping mode (the path faulted and barrier-coupled systems
// take): the trip fires in driver context with the merged view.
func TestCancelAbortsShardedSteppingRun(t *testing.T) {
	sh := NewSharded(2, 4)
	c := NewCancel()
	var info *CancelInfo
	sh.ArmCancel(c, func(ci CancelInfo) { info = &ci })
	for i := 0; i < 2; i++ {
		e := sh.Shard(i)
		e.ScheduleEvent(Cycle(i), &tickHandler{eng: e}, Payload{})
	}
	sh.Shard(1).Schedule(30, func() { c.Request("stepped abort") })
	sh.StepWhile(func() bool { return sh.Now() < 500 })
	if info == nil {
		t.Fatal("stepping-mode cancel never tripped")
	}
	if info.Reason != "stepped abort" || info.Executed == 0 {
		t.Errorf("trip = %+v", info)
	}
}

func TestCancelFromContext(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	c, stop := CancelFromContext(ctx)
	defer stop()
	if c.Requested() {
		t.Fatal("token fired before the context")
	}
	cancel(errors.New("job deadline exceeded"))
	// AfterFunc runs on its own goroutine; poll with a generous deadline.
	for d := time.Now().Add(10 * time.Second); !c.Requested() && time.Now().Before(d); {
		time.Sleep(time.Millisecond)
	}
	if !c.Requested() {
		t.Fatal("token never fired after context cancellation")
	}
	if got := c.Reason(); !strings.Contains(got, "job deadline exceeded") {
		t.Errorf("reason = %q, want the context cause", got)
	}

	// stop() before cancellation must release the binding.
	ctx2, cancel2 := context.WithCancel(context.Background())
	c2, stop2 := CancelFromContext(ctx2)
	stop2()
	cancel2()
	if c2.Requested() {
		t.Error("stopped binding still fired the token")
	}
}
