// Cooperative cancellation for the event engine.
//
// A Cancel is a token shared between the engine's event loop and some
// goroutine outside the simulation — an HTTP handler whose client hung
// up, a deadline timer, a SIGTERM drain. The outside goroutine calls
// Request; the engine observes the flag at its existing per-event check
// site and aborts by invoking the armed trip callback with a full
// diagnostic, exactly like a watchdog trip.
//
// The check is piggybacked on the watchdog's single `wd != nil` test in
// the pop loop: arming a Cancel on an engine with no watchdog installs a
// budget-less watchdog frame, so the fully disarmed hot path still pays
// exactly one nil check per event and nothing else. With a Cancel armed
// the per-event cost is one atomic load.
package sim

import "sync/atomic"

// Cancel is a cooperative cancellation token. The zero value is ready to
// use; all methods are safe for concurrent use and safe on a nil
// receiver (a nil token is never cancelled). A token is one-shot: the
// first Request wins and later reasons are dropped.
type Cancel struct {
	fired  atomic.Bool
	reason atomic.Pointer[string]
}

// NewCancel returns a fresh, unfired token.
func NewCancel() *Cancel { return &Cancel{} }

// Request asks every engine the token is armed on to abort at its next
// event boundary. The first caller's reason is the one trips report;
// subsequent calls are no-ops.
func (c *Cancel) Request(reason string) {
	if c == nil {
		return
	}
	if c.reason.CompareAndSwap(nil, &reason) {
		c.fired.Store(true)
	}
}

// Requested reports whether the token has fired.
func (c *Cancel) Requested() bool { return c != nil && c.fired.Load() }

// Reason returns the first Request's reason, or "" if unfired.
func (c *Cancel) Reason() string {
	if c == nil {
		return ""
	}
	if p := c.reason.Load(); p != nil {
		return *p
	}
	return ""
}

// CancelInfo is the diagnostic handed to a cancel trip: where the run
// was interrupted and the complete pending-event queue at that point,
// rendered exactly like a watchdog TripInfo dump.
type CancelInfo struct {
	Now      Cycle
	Reason   string
	Executed uint64 // events executed before the abort took effect
	Pending  int
	// PendingDump renders every pending event in execution order — the
	// same format (and on a sharded engine the same merged view) as
	// TripInfo.PendingDump.
	PendingDump string
}

// ArmCancel arms a cancellation token: once c.Request fires, the next
// per-event check invokes trip with a diagnostic and disarms the token.
// Composes with ArmWatchdog in either order — both ride the same
// per-event check. Arming a nil token disarms any existing one (and
// drops the watchdog frame too if no budget is configured).
func (e *Engine) ArmCancel(c *Cancel, trip func(CancelInfo)) {
	if c == nil {
		if wd := e.wd; wd != nil {
			wd.cancel, wd.cancelTrip = nil, nil
			if !wd.cfg.Enabled() {
				e.wd = nil
			}
		}
		return
	}
	if trip == nil {
		panic("sim: ArmCancel with nil trip callback")
	}
	if e.wd == nil {
		// Budget-less frame: checkWatchdog's budget test never fires on a
		// zero config, so this frame exists only to carry the cancel check
		// through the existing nil-check site.
		e.wd = &watchdog{lastCycle: e.now, lastEvents: e.executed}
	}
	e.wd.cancel, e.wd.cancelTrip = c, trip
}

// fireCancel disarms the token and invokes the trip callback with the
// engine's state. The watchdog frame survives iff it has a budget.
func (e *Engine) fireCancel(wd *watchdog) {
	c, trip := wd.cancel, wd.cancelTrip
	wd.cancel, wd.cancelTrip = nil, nil
	if !wd.cfg.Enabled() {
		e.wd = nil
	}
	if trip == nil {
		return
	}
	trip(CancelInfo{
		Now:         e.now,
		Reason:      c.Reason(),
		Executed:    e.executed,
		Pending:     e.pending,
		PendingDump: e.renderPending(),
	})
}

// shardCancelMark is the sentinel panic a shard's cancel trip raises
// mid-epoch so the worker's recover can hand the abort to the driver —
// the cancellation analogue of shardTripMark.
type shardCancelMark struct{}

// ArmCancel arms a cancellation token on every shard. Whichever shard's
// per-event check observes the fired token first surfaces the abort: in
// an epoch worker the shard records its CancelInfo and unwinds to the
// barrier, where the driver fires one combined trip with the merged
// pending dump (byte-compatible with the sequential engine's); under
// sequential stepping the trip fires directly in driver context.
func (sh *Sharded) ArmCancel(c *Cancel, trip func(CancelInfo)) {
	if c == nil {
		sh.cxl, sh.cxlTrip = nil, nil
		for _, e := range sh.shards {
			e.ArmCancel(nil, nil)
		}
		return
	}
	if trip == nil {
		panic("sim: ArmCancel with nil trip callback")
	}
	sh.cxl, sh.cxlTrip = c, trip
	for _, e := range sh.shards {
		ss := e.ss
		e.ArmCancel(c, func(ci CancelInfo) {
			if ss.inEpoch {
				ss.cancelInfo = ci
				ss.cancelled = true
				panic(shardCancelMark{})
			}
			// Driver context (sequential stepping): fire the combined
			// trip with the merged dump directly.
			ss.sh.fireCancelAll(ci)
		})
	}
}

// fireCancelAll disarms the token on every shard and invokes the
// combined trip with the merged pending view (live queues, merge
// buffers, global queue) — the cancellation analogue of fireTrip.
func (sh *Sharded) fireCancelAll(src CancelInfo) {
	for _, e := range sh.shards {
		if wd := e.wd; wd != nil {
			wd.cancel, wd.cancelTrip = nil, nil
			if !wd.cfg.Enabled() {
				e.wd = nil
			}
		}
	}
	trip := sh.cxlTrip
	sh.cxl, sh.cxlTrip = nil, nil
	if trip == nil {
		return
	}
	src.Now = sh.Now()
	src.Executed = sh.Executed()
	src.Pending = sh.PendingAll()
	src.PendingDump = sh.renderPending()
	trip(src)
}
