package sim

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift64*). Workload generators use it so that every benchmark run is
// reproducible from a seed, independent of Go runtime randomization.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero bound")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Fork derives an independent generator from this one; useful for giving
// each thread of a workload its own stream while keeping runs reproducible.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() | 1)
}
