package sim

import (
	"fmt"
	"strings"
	"testing"
)

// runMeshStepping drives a sharded mesh through the sequential-stepping
// mode instead of parallel epochs.
func runMeshStepping(t testing.TB, nodes, shards, budget int, lookahead Cycle, seed uint64) meshResult {
	m, _, sh := buildMesh(nodes, shards, shards, budget, lookahead, seed)
	var res meshResult
	for sh.Step() {
	}
	res.end = sh.Now()
	res.executed = sh.Executed()
	if sh.Pending() != 0 {
		t.Fatalf("stepping run left %d pending events", sh.Pending())
	}
	for _, n := range m.nodes {
		res.hashes = append(res.hashes, n.hash)
	}
	res.globalHash = m.globalHash
	res.sideLog = m.sideLog
	return res
}

// TestSteppingMatchesSequential: stepping a sharded engine is the
// sequential schedule by construction — the full mesh result must match
// the one-Engine reference, like the epoch mode does.
func TestSteppingMatchesSequential(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		for seed := uint64(1); seed <= 3; seed++ {
			label := fmt.Sprintf("step/shards=%d/seed=%d", shards, seed)
			want := runMesh(t, 16, 1, shards, 400, 3, seed)
			got := runMeshStepping(t, 16, shards, 400, 3, seed)
			checkMeshEqual(t, want, got, label)
		}
	}
}

// TestSteppingMixedWithEpochs: a run may interleave epoch mode and
// stepping (cpu.Run picks per call); state carried across the mode switch
// must stay equivalent to the sequential engine.
func TestSteppingMixedWithEpochs(t *testing.T) {
	m, _, sh := buildMesh(8, 4, 4, 100, 3, 11)
	sh.Run() // phase 1: parallel epochs
	for _, n := range m.nodes {
		n.budget = 60
		n.eng.ScheduleEvent(1, n, Payload{A: 5, X: -1, Op: meshOpDeliver})
	}
	end := sh.StepWhile(func() bool { return true }) // phase 2: stepping
	if sh.Pending() != 0 {
		t.Fatalf("mixed run left %d pending", sh.Pending())
	}

	ms, seq, _ := buildMesh(8, 1, 4, 100, 3, 11)
	seq.Run()
	for _, n := range ms.nodes {
		n.budget = 60
		n.eng.ScheduleEvent(1, n, Payload{A: 5, X: -1, Op: meshOpDeliver})
	}
	wantEnd := seq.Run()
	if end != wantEnd {
		t.Errorf("mixed final cycle = %d, want %d", end, wantEnd)
	}
	if sh.Executed() != seq.Executed() {
		t.Errorf("mixed executed = %d, want %d", sh.Executed(), seq.Executed())
	}
	for i := range ms.nodes {
		if ms.nodes[i].hash != m.nodes[i].hash {
			t.Fatalf("node %d diverged across mixed-mode run", i)
		}
	}
}

// TestStepToMatchesRunTo: StepTo must run exactly the events at or before
// t and land every clock on t, like the sequential RunTo.
func TestStepToMatchesRunTo(t *testing.T) {
	const cut = Cycle(40)
	m, _, sh := buildMesh(8, 4, 4, 300, 3, 23)
	if got := sh.StepTo(cut); got != cut {
		t.Fatalf("StepTo returned %d, want %d", got, cut)
	}
	if sh.Now() != cut {
		t.Fatalf("Now() = %d after StepTo(%d)", sh.Now(), cut)
	}

	ms, seq, _ := buildMesh(8, 1, 4, 300, 3, 23)
	seq.RunTo(cut)
	if seq.Executed() != sh.Executed() {
		t.Fatalf("executed at cut = %d, want %d", sh.Executed(), seq.Executed())
	}
	for i := range ms.nodes {
		if ms.nodes[i].hash != m.nodes[i].hash {
			t.Fatalf("node %d diverged at StepTo(%d)", i, cut)
		}
	}

	// Drain the remainder in stepping mode and compare the full run.
	for sh.Step() {
	}
	seq.Run()
	for i := range ms.nodes {
		if ms.nodes[i].hash != m.nodes[i].hash {
			t.Fatalf("node %d diverged after drain", i)
		}
	}
}

// TestSteppingWatchdogTrips: in stepping mode the per-shard watchdog
// fires from driver context — no worker recover in the stack — and must
// still deliver the combined all-shards trip dump.
func TestSteppingWatchdogTrips(t *testing.T) {
	sh := NewSharded(4, 3)
	w := &wedger{eng: sh.Shard(1), peer: -1}
	sh.Shard(1).ScheduleEvent(1, w, Payload{})
	var got TripInfo
	sh.ArmWatchdog(WatchdogConfig{MaxEvents: 300}, func(ti TripInfo) {
		got = ti
		panic("tripped")
	})
	defer func() {
		if r := recover(); r != "tripped" {
			t.Fatalf("expected trip panic, got %v", r)
		}
		if got.EventsSinceProgress < 300 {
			t.Fatalf("EventsSinceProgress = %d, want >= 300", got.EventsSinceProgress)
		}
		if !strings.Contains(got.PendingDump, "wedger") {
			t.Fatalf("dump missing wedged shard's handler:\n%s", got.PendingDump)
		}
	}()
	for sh.Step() {
	}
}

// TestSteppingProgressSuppressesTrip: a driver-context Progress mark
// resets every shard's budget (sequential semantics), so a healthy
// stepping run of any length never trips.
func TestSteppingProgressSuppressesTrip(t *testing.T) {
	sh := NewSharded(2, 3)
	n := &progresser{eng: sh.Shard(0), left: 5000}
	sh.Shard(0).ScheduleEvent(1, n, Payload{})
	sh.ArmWatchdog(WatchdogConfig{MaxEvents: 100}, func(ti TripInfo) {
		t.Fatalf("unexpected trip: %+v", ti)
	})
	for sh.Step() {
	}
	if n.left != 0 {
		t.Fatalf("budget not drained: %d", n.left)
	}
}

// TestInEpochAccessors: InEpoch is false for plain engines and in driver
// context, true only inside an epoch.
func TestInEpochAccessors(t *testing.T) {
	if NewEngine().InEpoch() {
		t.Fatal("plain engine reports InEpoch")
	}
	sh := NewSharded(2, 3)
	e := sh.Shard(0)
	if e.InEpoch() {
		t.Fatal("driver context reports InEpoch")
	}
	e.ss.inEpoch = true
	if !e.InEpoch() {
		t.Fatal("epoch context not reported")
	}
	e.ss.inEpoch = false
}
