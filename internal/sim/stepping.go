// Sequential stepping over a sharded engine.
//
// Stepping is the Sharded engine's second execution mode: the driver pops
// the globally earliest event by (cycle, key) — across every shard queue
// and the global queue — and executes it on its own goroutine, advancing
// all shard clocks in lockstep. Every insertion then happens in driver
// context and receives an exact merge key immediately, so the executed
// schedule IS the sequential engine's schedule, event for event: stepping
// is byte-identical by construction and carries none of the epoch mode's
// preconditions. Models with observability hooks, fault injection, or
// non-uniform interconnect latencies step correctly; cpu.Run falls back
// to stepping whenever parallel epochs are not provably safe.
package sim

// InEpoch reports whether the engine is currently executing inside a
// parallel epoch worker. Driver-context callers (setup, stepping, global
// events, barriers) see false. Components use it to decide whether a
// shared-state mutation must be deferred (DeferOp) or may apply directly.
func (e *Engine) InEpoch() bool { return e.ss != nil && e.ss.inEpoch }

// peekNext reports the timestamp and sequence key of the engine's
// earliest pending event without executing it. Outside epochs every
// queued key is exact, and the head of the first occupied ring bucket is
// the bucket's minimum (plain engines append in seq order; shard engines
// keep buckets sorted by (when, key) — see enqueueNear), so the peek is
// O(ring scan) like nextTime.
func (e *Engine) peekNext() (Cycle, uint64, bool) {
	if e.pending == 0 {
		return 0, 0, false
	}
	if d, ok := e.scanRing(); ok {
		t := e.now + Cycle(d)
		b := &e.ring[uint32(t)&ringMask]
		return t, b.evs[b.head].seq, true
	}
	if len(e.overflow) > 0 {
		return e.overflow[0].when, e.overflow[0].seq, true
	}
	return 0, 0, false
}

// peekMin locates the globally earliest pending event by (cycle, key):
// its cycle, merge key, and owning shard, with shard -1 denoting the
// global queue's head.
func (sh *Sharded) peekMin() (when Cycle, key uint64, shard int, ok bool) {
	shard = -2
	for s, e := range sh.shards {
		if t, k, o := e.peekNext(); o && (shard == -2 || t < when || (t == when && k < key)) {
			when, key, shard = t, k, s
		}
	}
	if len(sh.globalQ) > 0 {
		g := &sh.globalQ[0]
		if shard == -2 || g.when < when || (g.when == when && g.key < key) {
			when, key, shard = g.when, g.key, -1
		}
	}
	return when, key, shard, shard != -2
}

// runMin advances every shard clock to when — stepping keeps the clocks
// uniform, so components reading their local engine's Now observe the
// single global clock exactly as on one Engine — then executes the chosen
// event on the caller's goroutine.
func (sh *Sharded) runMin(when Cycle, shard int) {
	for _, e := range sh.shards {
		e.advanceTo(when)
	}
	if shard < 0 {
		g := sh.gPop()
		sh.globalsRun++
		if g.fn != nil {
			g.fn()
		} else {
			g.h.Handle(g.p)
		}
		// Globals execute on the driver, outside any shard's popRun, but
		// they still count against the (global, stepping-mode) watchdog
		// budget exactly as on one Engine.
		for _, e := range sh.shards {
			if e.wd != nil {
				e.checkWatchdog()
				break
			}
		}
		return
	}
	sh.shards[shard].popRun()
}

// Step executes the single globally earliest pending event — across all
// shard queues and the global queue — and reports whether one ran. It is
// the sharded analogue of Engine.Step.
func (sh *Sharded) Step() bool {
	when, _, shard, ok := sh.peekMin()
	if !ok {
		return false
	}
	sh.runMin(when, shard)
	return true
}

// StepWhile executes globally ordered single events while cond returns
// true and events remain, returning the final cycle. Unlike RunWhile the
// condition is evaluated per event, so the stop cycle matches the
// sequential engine's RunWhile exactly.
func (sh *Sharded) StepWhile(cond func() bool) Cycle {
	for cond() && sh.Step() {
	}
	return sh.Now()
}

// StepTo executes every event with timestamp <= t in global order, then
// advances all shard clocks to exactly t — the sharded RunTo, used by
// synchronous callers that complete work without scheduling events.
func (sh *Sharded) StepTo(t Cycle) Cycle {
	for {
		when, _, shard, ok := sh.peekMin()
		if !ok || when > t {
			break
		}
		sh.runMin(when, shard)
	}
	for _, e := range sh.shards {
		if e.now < t {
			e.advanceTo(t)
		}
	}
	return t
}
