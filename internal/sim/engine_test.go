package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(10, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(5, func() { order = append(order, 2) })
	end := e.Run()
	if end != 10 {
		t.Fatalf("final cycle = %d, want 10", end)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(7, func() { order = append(order, i) })
	}
	e.Run()
	for i := 0; i < 100; i++ {
		if order[i] != i {
			t.Fatalf("same-cycle events not FIFO at %d: got %d", i, order[i])
		}
	}
}

func TestEngineZeroDelayRunsWithinSameCycle(t *testing.T) {
	e := NewEngine()
	var at Cycle
	e.Schedule(4, func() {
		e.Schedule(0, func() { at = e.Now() })
	})
	e.Run()
	if at != 4 {
		t.Fatalf("zero-delay event ran at cycle %d, want 4", at)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 50 {
			e.Schedule(2, tick)
		}
	}
	e.Schedule(0, tick)
	end := e.Run()
	if count != 50 {
		t.Fatalf("count = %d, want 50", count)
	}
	if end != 98 {
		t.Fatalf("end cycle = %d, want 98", end)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := make(map[Cycle]bool)
	for _, c := range []Cycle{5, 10, 15, 20} {
		c := c
		e.ScheduleAt(c, func() { ran[c] = true })
	}
	e.RunUntil(12)
	if !ran[5] || !ran[10] {
		t.Fatal("events at or before the limit did not run")
	}
	if ran[15] || ran[20] {
		t.Fatal("events beyond the limit ran")
	}
	if e.Now() != 12 {
		t.Fatalf("now = %d, want 12", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.Run()
	if !ran[15] || !ran[20] {
		t.Fatal("remaining events did not run after resume")
	}
}

func TestEngineRunFor(t *testing.T) {
	e := NewEngine()
	hits := 0
	for i := Cycle(1); i <= 10; i++ {
		e.ScheduleAt(i*10, func() { hits++ })
	}
	e.RunFor(35)
	if hits != 3 {
		t.Fatalf("hits = %d, want 3", hits)
	}
	e.RunFor(30) // now at 65
	if hits != 6 {
		t.Fatalf("hits = %d, want 6", hits)
	}
}

func TestEngineRunWhile(t *testing.T) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() { n++; e.Schedule(1, tick) }
	e.Schedule(0, tick)
	e.RunWhile(func() bool { return n < 10 })
	if n != 10 {
		t.Fatalf("n = %d, want 10", n)
	}
}

func TestEngineRunBoundedPanicsOnLivelock(t *testing.T) {
	e := NewEngine()
	var tick func()
	tick = func() { e.Schedule(1, tick) }
	e.Schedule(0, tick)
	defer func() {
		if recover() == nil {
			t.Fatal("RunBounded did not panic on unbounded event stream")
		}
	}()
	e.RunBounded(100)
}

func TestScheduleAtPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("ScheduleAt in the past did not panic")
			}
		}()
		e.ScheduleAt(5, func() {})
	})
	e.Run()
}

func TestScheduleNilPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(nil) did not panic")
		}
	}()
	e.Schedule(0, nil)
}

func TestEngineExecutedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 25; i++ {
		e.Schedule(Cycle(i), func() {})
	}
	e.Run()
	if e.Executed() != 25 {
		t.Fatalf("executed = %d, want 25", e.Executed())
	}
}

// Property: for any set of delays, events execute in nondecreasing time
// order and the final cycle equals the max delay.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		var seen []Cycle
		var max Cycle
		for _, d := range delays {
			d := Cycle(d)
			if d > max {
				max = d
			}
			e.Schedule(d, func() { seen = append(seen, e.Now()) })
		}
		end := e.Run()
		if end != max {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGZeroSeedRemapped(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero-seeded RNG stuck at zero")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of range", v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGForkIndependent(t *testing.T) {
	r := NewRNG(5)
	f1 := r.Fork()
	f2 := r.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if f1.Uint64() == f2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked streams correlate: %d/100 equal draws", same)
	}
}

// Property: Bool(p) frequency approximates p for a few probabilities.
func TestRNGBoolFrequency(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.9} {
		r := NewRNG(11)
		hits := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if r.Bool(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if got < p-0.02 || got > p+0.02 {
			t.Fatalf("Bool(%v) frequency = %v", p, got)
		}
	}
}
