package sim

import (
	"strings"
	"testing"
)

// wedgeHandler reschedules itself forever without marking progress — the
// canonical livelock the watchdog exists to catch.
type wedgeHandler struct {
	eng *Engine
}

func (w *wedgeHandler) Handle(p Payload) {
	w.eng.ScheduleEvent(1, w, p)
}

func TestWatchdogTripsOnWedge(t *testing.T) {
	eng := NewEngine()
	var trip *TripInfo
	eng.ArmWatchdog(WatchdogConfig{MaxEvents: 100}, func(ti TripInfo) {
		trip = &ti
	})
	w := &wedgeHandler{eng: eng}
	eng.ScheduleEvent(0, w, Payload{A: 0xdead, Op: 7})
	end := eng.RunUntil(10_000)
	if trip == nil {
		t.Fatal("watchdog never tripped on a wedged handler")
	}
	if trip.EventsSinceProgress < 100 || trip.EventsSinceProgress > 101 {
		t.Errorf("tripped after %d events, want ~100", trip.EventsSinceProgress)
	}
	if end >= 10_000 {
		// a non-panicking trip disarms; the wedge keeps running to the
		// limit, which is exactly the RunUntil bound
		t.Logf("engine ran to limit after disarmed trip (expected)")
	}
	if trip.Pending != 1 {
		t.Errorf("trip saw %d pending events, want 1", trip.Pending)
	}
	if !strings.Contains(trip.PendingDump, "wedgeHandler") {
		t.Errorf("pending dump missing handler type:\n%s", trip.PendingDump)
	}
	if !strings.Contains(trip.PendingDump, "op=7") || !strings.Contains(trip.PendingDump, "A=0xdead") {
		t.Errorf("pending dump missing payload fields:\n%s", trip.PendingDump)
	}
}

func TestWatchdogTripsOnCycleBudget(t *testing.T) {
	eng := NewEngine()
	var tripped bool
	eng.ArmWatchdog(WatchdogConfig{MaxCycles: 500}, func(ti TripInfo) {
		tripped = true
		if ti.CyclesSinceProgress < 500 {
			t.Errorf("tripped after %d cycles, want >= 500", ti.CyclesSinceProgress)
		}
	})
	// Sparse self-rescheduling timer: few events, many cycles.
	var sparse func()
	sparse = func() { eng.Schedule(200, sparse) }
	eng.Schedule(200, sparse)
	eng.RunUntil(5_000)
	if !tripped {
		t.Fatal("watchdog never tripped on cycle budget")
	}
}

func TestWatchdogProgressResetsBudget(t *testing.T) {
	eng := NewEngine()
	eng.ArmWatchdog(WatchdogConfig{MaxEvents: 50, MaxCycles: 1_000}, func(ti TripInfo) {
		t.Fatalf("false positive: %+v", ti)
	})
	// A healthy loop: every event marks progress, so neither budget is
	// ever exceeded even though the run is long on both axes.
	n := 0
	var tick func()
	tick = func() {
		eng.Progress()
		if n++; n < 2_000 {
			eng.Schedule(100, tick)
		}
	}
	eng.Schedule(0, tick)
	eng.Run()
	if n != 2_000 {
		t.Errorf("ran %d ticks, want 2000", n)
	}
}

func TestWatchdogDisarm(t *testing.T) {
	eng := NewEngine()
	eng.ArmWatchdog(WatchdogConfig{MaxEvents: 10}, func(ti TripInfo) {
		t.Fatal("disarmed watchdog tripped")
	})
	eng.DisarmWatchdog()
	w := &wedgeHandler{eng: eng}
	eng.ScheduleEvent(0, w, Payload{})
	eng.RunUntil(100)

	// Arming with a disabled config is also a disarm.
	eng.ArmWatchdog(WatchdogConfig{MaxEvents: 10}, func(ti TripInfo) {
		t.Fatal("config-disabled watchdog tripped")
	})
	eng.ArmWatchdog(WatchdogConfig{}, nil)
	eng.RunUntil(200)
}

func TestWatchdogNilTripPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ArmWatchdog(enabled, nil) did not panic")
		}
	}()
	NewEngine().ArmWatchdog(WatchdogConfig{MaxEvents: 1}, nil)
}

func TestWatchdogRearmAfterTrip(t *testing.T) {
	eng := NewEngine()
	trips := 0
	var arm func()
	arm = func() {
		eng.ArmWatchdog(WatchdogConfig{MaxEvents: 20}, func(TripInfo) {
			trips++
			if trips < 3 {
				arm()
			}
		})
	}
	arm()
	w := &wedgeHandler{eng: eng}
	eng.ScheduleEvent(0, w, Payload{})
	eng.RunUntil(1_000)
	if trips != 3 {
		t.Errorf("got %d trips, want 3 (trip disarms; re-arm from the callback works)", trips)
	}
}

func TestWatchdogConfigEnabled(t *testing.T) {
	if (WatchdogConfig{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if !(WatchdogConfig{MaxEvents: 1}).Enabled() || !(WatchdogConfig{MaxCycles: 1}).Enabled() {
		t.Error("bounded config reports disabled")
	}
}
