// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate every timed component in this repository is
// built on: cache controllers, the directory, the DRAM model, and the CPU
// models all schedule closures at future cycles and the engine executes
// them in (cycle, insertion-order) order. Determinism is guaranteed by a
// monotonically increasing sequence number that breaks ties between events
// scheduled for the same cycle, so two runs with the same inputs produce
// identical event interleavings and therefore identical statistics.
package sim

import (
	"container/heap"
	"fmt"
)

// Cycle is a point in simulated time, measured in processor clock cycles.
type Cycle uint64

// Event is a unit of scheduled work. The engine invokes Fn at cycle When.
type event struct {
	when Cycle
	seq  uint64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// ready to use; time starts at cycle 0.
type Engine struct {
	now       Cycle
	seq       uint64
	queue     eventHeap
	executed  uint64
	scheduled uint64
}

// NewEngine returns an engine with time set to cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Executed returns the total number of events the engine has run.
func (e *Engine) Executed() uint64 { return e.executed }

// Schedule enqueues fn to run delay cycles from now. A delay of zero runs
// fn later in the current cycle, after all previously scheduled events for
// this cycle.
func (e *Engine) Schedule(delay Cycle, fn func()) {
	if fn == nil {
		panic("sim: Schedule called with nil function")
	}
	e.seq++
	e.scheduled++
	heap.Push(&e.queue, event{when: e.now + delay, seq: e.seq, fn: fn})
}

// ScheduleAt enqueues fn at an absolute cycle, which must not be in the
// past.
func (e *Engine) ScheduleAt(when Cycle, fn func()) {
	if when < e.now {
		panic(fmt.Sprintf("sim: ScheduleAt(%d) in the past (now=%d)", when, e.now))
	}
	e.Schedule(when-e.now, fn)
}

// step executes the single earliest event. It reports false if the queue
// is empty.
func (e *Engine) step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(event)
	if ev.when < e.now {
		panic("sim: event scheduled in the past")
	}
	e.now = ev.when
	e.executed++
	ev.fn()
	return true
}

// Run executes events until the queue drains and returns the final cycle.
func (e *Engine) Run() Cycle {
	for e.step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= limit. Events scheduled
// beyond limit remain queued. It returns the current cycle, which is
// min(limit, time of last executed event) or the prior now if nothing ran.
func (e *Engine) RunUntil(limit Cycle) Cycle {
	for len(e.queue) > 0 && e.queue[0].when <= limit {
		e.step()
	}
	if e.now < limit && len(e.queue) > 0 {
		// Advance logical time to the limit so callers observe a
		// consistent clock even if no event landed exactly on it.
		e.now = limit
	}
	return e.now
}

// RunFor executes events for the next d cycles.
func (e *Engine) RunFor(d Cycle) Cycle { return e.RunUntil(e.now + d) }

// RunWhile executes events while cond returns true and events remain.
// It returns the final cycle.
func (e *Engine) RunWhile(cond func() bool) Cycle {
	for cond() && e.step() {
	}
	return e.now
}

// MaxEventsExceeded is returned (as a panic message prefix) by RunBounded.
const maxEventsMsg = "sim: event budget exhausted (possible livelock)"

// RunBounded executes up to maxEvents events; it panics if the budget is
// exhausted while events remain, which in this codebase always indicates a
// protocol livelock. It returns the final cycle.
func (e *Engine) RunBounded(maxEvents uint64) Cycle {
	var n uint64
	for e.step() {
		n++
		if n >= maxEvents && len(e.queue) > 0 {
			panic(maxEventsMsg)
		}
	}
	return e.now
}
