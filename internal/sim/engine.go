// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate every timed component in this repository is
// built on: cache controllers, the directory, the DRAM model, and the CPU
// models all schedule work at future cycles and the engine executes it in
// (cycle, insertion-order) order. Determinism is guaranteed by a
// monotonically increasing sequence number that breaks ties between events
// scheduled for the same cycle, so two runs with the same inputs produce
// identical event interleavings and therefore identical statistics.
//
// Two scheduling interfaces coexist:
//
//   - Schedule/ScheduleAt take a closure. Convenient, but every capturing
//     closure is a heap allocation at the call site.
//   - ScheduleEvent/ScheduleEventAt take a (Handler, Payload) pair: the
//     handler is a long-lived component (an L1 controller, an LLC bank)
//     and the payload is a fixed-size value struct carried inside the
//     event slot, so scheduling allocates nothing in steady state.
//
// Storage is a calendar queue: a ring of per-cycle FIFO buckets covering
// the near future, with a slice-backed binary min-heap as the overflow
// tier for events more than ringSize cycles out. Bucket slots and heap
// slots are recycled in place (the free list is the retained capacity of
// each bucket), so steady-state execution performs no allocation and no
// interface boxing — unlike the previous container/heap implementation,
// which boxed every event through `any`.
package sim

import (
	"fmt"
	"math/bits"
)

// Cycle is a point in simulated time, measured in processor clock cycles.
type Cycle uint64

// Payload is the fixed-size argument carried by a handler-based event.
// Components pack their message or request state into it (see
// coherence.Msg's codec) instead of capturing it in a closure. Field
// meaning is owner-defined; Op conventionally discriminates the action
// when one handler serves several event types.
type Payload struct {
	A, B    uint64
	X, Y, Z int32
	K, F    uint8
	Aux, Op uint8
}

// Handler consumes payload-carrying events. Implementations are long-lived
// simulation components; the interface value in the event slot is a plain
// pointer, so scheduling through a Handler never allocates.
type Handler interface {
	Handle(p Payload)
}

// event is a unit of scheduled work: either a closure (fn) or a
// (handler, payload) pair.
type event struct {
	when Cycle
	seq  uint64
	fn   func()
	h    Handler
	p    Payload
}

const (
	// ringBits sizes the near-future calendar ring. 1024 cycles covers
	// every protocol hop and the DRAM access window, so in practice only
	// refresh-scale timers hit the overflow tier.
	ringBits = 10
	ringSize = 1 << ringBits
	ringMask = ringSize - 1
	ringWord = ringSize / 64
)

// bucket is the FIFO of events for one cycle of the near-future ring.
// head indexes the next unexecuted event; the slice's retained capacity is
// the bucket's free list.
type bucket struct {
	head int
	evs  []event
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// ready to use; time starts at cycle 0.
type Engine struct {
	now       Cycle
	seq       uint64
	executed  uint64
	scheduled uint64
	pending   int

	ring [ringSize]bucket
	occ  [ringWord]uint64 // occupancy bitmap: bit i set iff ring[i] has unexecuted events

	// overflow holds events scheduled >= ringSize cycles out, as a binary
	// min-heap ordered by (when, seq). Events migrate into the ring as the
	// current cycle advances and their horizon opens.
	overflow []event

	// wd is the armed liveness watchdog, or nil. See watchdog.go. Kept as
	// a single pointer so the disarmed hot path pays one nil check.
	wd *watchdog

	// ss is non-nil iff this engine is one shard of a Sharded engine (see
	// sharded.go). Like wd it is a single pointer, so the sequential hot
	// path pays one nil check per schedule and nothing else.
	ss *shardState
}

// NewEngine returns an engine with time set to cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return e.pending }

// Executed returns the total number of events the engine has run.
func (e *Engine) Executed() uint64 { return e.executed }

// Schedule enqueues fn to run delay cycles from now. A delay of zero runs
// fn later in the current cycle, after all previously scheduled events for
// this cycle.
func (e *Engine) Schedule(delay Cycle, fn func()) {
	if fn == nil {
		panic("sim: Schedule called with nil function")
	}
	if e.ss != nil {
		e.ss.schedule(e, event{when: e.now + delay, fn: fn})
		return
	}
	e.seq++
	e.scheduled++
	e.pending++
	e.insert(event{when: e.now + delay, seq: e.seq, fn: fn})
}

// ScheduleAt enqueues fn at an absolute cycle, which must not be in the
// past. when == Now() is valid and runs later in the current cycle.
func (e *Engine) ScheduleAt(when Cycle, fn func()) {
	if when < e.now {
		panic(fmt.Sprintf("sim: ScheduleAt(%d) in the past (now=%d)", when, e.now))
	}
	e.Schedule(when-e.now, fn)
}

// ScheduleEvent enqueues a (handler, payload) event delay cycles from now.
// This is the zero-allocation path: the payload is stored by value in the
// event slot and the handler is an existing component pointer.
func (e *Engine) ScheduleEvent(delay Cycle, h Handler, p Payload) {
	if h == nil {
		panic("sim: ScheduleEvent called with nil handler")
	}
	if e.ss != nil {
		e.ss.schedule(e, event{when: e.now + delay, h: h, p: p})
		return
	}
	e.seq++
	e.scheduled++
	e.pending++
	e.insert(event{when: e.now + delay, seq: e.seq, h: h, p: p})
}

// ScheduleEventAt is ScheduleEvent at an absolute cycle, which must not be
// in the past.
func (e *Engine) ScheduleEventAt(when Cycle, h Handler, p Payload) {
	if when < e.now {
		panic(fmt.Sprintf("sim: ScheduleEventAt(%d) in the past (now=%d)", when, e.now))
	}
	e.ScheduleEvent(when-e.now, h, p)
}

// insert routes an event to the ring (near future) or the overflow heap.
func (e *Engine) insert(ev event) {
	if ev.when-e.now < ringSize {
		e.enqueueNear(ev)
	} else {
		e.overflowPush(ev)
	}
}

func (e *Engine) enqueueNear(ev event) {
	idx := uint32(ev.when) & ringMask
	b := &e.ring[idx]
	b.evs = append(b.evs, ev)
	if e.ss != nil {
		// Shard engines receive barrier-time insertions whose merge keys
		// may be smaller than events already queued for the cycle, so the
		// bucket FIFO invariant (append order == seq order) does not hold
		// for free. Restore it by insertion from the tail; mid-epoch
		// inserts carry monotone provisional keys, so this degenerates to
		// a single comparison on the hot path.
		for i := len(b.evs) - 1; i > b.head && eventLess(&b.evs[i], &b.evs[i-1]); i-- {
			b.evs[i], b.evs[i-1] = b.evs[i-1], b.evs[i]
		}
	}
	e.occ[idx>>6] |= 1 << (idx & 63)
}

// nextTime returns the timestamp of the earliest pending event. Ring
// events are always earlier than overflow events (the overflow tier holds
// only events >= now+ringSize), so the ring is scanned first via the
// occupancy bitmap.
func (e *Engine) nextTime() (Cycle, bool) {
	if e.pending == 0 {
		return 0, false
	}
	if d, ok := e.scanRing(); ok {
		return e.now + Cycle(d), true
	}
	if len(e.overflow) > 0 {
		return e.overflow[0].when, true
	}
	return 0, false
}

// scanRing finds the circular distance from now to the first occupied
// bucket, scanning the bitmap one word at a time.
func (e *Engine) scanRing() (uint32, bool) {
	start := uint32(e.now) & ringMask
	w := start >> 6
	off := start & 63
	// First (partial) word: bits at or after the start position.
	if word := e.occ[w] >> off; word != 0 {
		return uint32(bits.TrailingZeros64(word)), true
	}
	// Remaining words in circular order, including the wrapped start word
	// (its low bits cover the farthest cycles of the horizon).
	for i := uint32(1); i <= ringWord; i++ {
		cw := (w + i) & (ringWord - 1)
		word := e.occ[cw]
		if i == ringWord {
			word &= (1 << off) - 1 // only bits before start remain
		}
		if word != 0 {
			dist := i*64 - off + uint32(bits.TrailingZeros64(word))
			return dist, true
		}
	}
	return 0, false
}

// advanceTo moves simulated time forward and migrates overflow events
// whose horizon opened into the ring. Migration pops in (when, seq) order,
// so same-cycle overflow events land in their bucket in sequence order,
// ahead of any event scheduled for that cycle afterwards (which, by
// monotonicity of seq, is younger).
func (e *Engine) advanceTo(t Cycle) {
	if t == e.now {
		return
	}
	e.now = t
	for len(e.overflow) > 0 && e.overflow[0].when-t < ringSize {
		e.enqueueNear(e.overflowPop())
	}
}

// popRun executes the next event of the current cycle's bucket. The
// executed slot is zeroed immediately so no fn/handler reference outlives
// its event.
func (e *Engine) popRun() {
	idx := uint32(e.now) & ringMask
	b := &e.ring[idx]
	ev := b.evs[b.head]
	b.evs[b.head] = event{}
	b.head++
	if b.head == len(b.evs) {
		b.evs = b.evs[:0]
		b.head = 0
		e.occ[idx>>6] &^= 1 << (idx & 63)
	}
	e.pending--
	e.executed++
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.h.Handle(ev.p)
	}
	if e.wd != nil {
		e.checkWatchdog()
	}
}

// step executes the single earliest event. It reports false if the queue
// is empty.
func (e *Engine) step() bool {
	t, ok := e.nextTime()
	if !ok {
		return false
	}
	e.advanceTo(t)
	e.popRun()
	return true
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp, and reports whether an event ran. It is the model
// checker's scheduling primitive: exploring every interleaving of
// externally injected work between individual engine events enumerates
// every schedule the deterministic engine can produce.
func (e *Engine) Step() bool { return e.step() }

// ForEachPending visits every pending event in execution order — (when,
// seq), the order Run would execute them — reporting each event's delay
// relative to Now, its handler and payload, and whether it is a closure
// event (closure events carry no inspectable payload). The engine must not
// be mutated during iteration. Model checkers use this to fold the event
// queue into a canonical state fingerprint.
func (e *Engine) ForEachPending(fn func(rel Cycle, h Handler, p Payload, isClosure bool)) {
	e.ForEachPendingAbs(func(when Cycle, _ uint64, h Handler, p Payload, isClosure bool) {
		fn(when-e.now, h, p, isClosure)
	})
}

// ForEachPendingAbs is ForEachPending reporting absolute timestamps and
// merge keys instead of relative delays. On a shard engine the keys let a
// caller merge several shards' queues into the global execution order —
// outside epochs every key is exact (drawn from the shared sequential
// counter), so the merged (when, key) order IS the order one Engine would
// execute; mid-epoch, merge-buffer events appear under their provisional
// keys, which is where the barrier merge would slot them.
func (e *Engine) ForEachPendingAbs(fn func(when Cycle, key uint64, h Handler, p Payload, isClosure bool)) {
	deferred := 0
	if ss := e.ss; ss != nil {
		for i := range ss.born {
			if ss.born[i].kind != bornLive {
				deferred++
			}
		}
	}
	if e.pending+deferred == 0 {
		return
	}
	evs := make([]event, 0, e.pending+deferred)
	for i := range e.ring {
		b := &e.ring[i]
		evs = append(evs, b.evs[b.head:]...)
	}
	evs = append(evs, e.overflow...)
	if ss := e.ss; ss != nil {
		// Mid-epoch, events bound for other shards (and deferred locals)
		// sit in the born buffer awaiting the barrier merge. They are
		// pending work all the same: watchdog dumps and crash bundles
		// must see them.
		for i := range ss.born {
			br := &ss.born[i]
			if br.kind == bornLive {
				continue
			}
			ev := br.ev
			ev.seq = provisionalBase + uint64(i)
			evs = append(evs, ev)
		}
	}
	sortEvents(evs)
	for i := range evs {
		ev := &evs[i]
		fn(ev.when, ev.seq, ev.h, ev.p, ev.fn != nil)
	}
}

// sortEvents orders events by (when, seq) with a simple insertion sort:
// pending queues are small (tens of events) whenever ForEachPending is
// used, and avoiding package sort keeps the event type fully unexported.
func sortEvents(evs []event) {
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && eventLess(&evs[j], &evs[j-1]); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}

// Run executes events until the queue drains and returns the final cycle.
func (e *Engine) Run() Cycle {
	for e.step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= limit. Events scheduled
// beyond limit remain queued. It returns the current cycle, which is
// min(limit, time of last executed event) or the prior now if nothing ran.
func (e *Engine) RunUntil(limit Cycle) Cycle {
	for {
		t, ok := e.nextTime()
		if !ok || t > limit {
			break
		}
		e.advanceTo(t)
		e.popRun()
	}
	if e.now < limit && e.pending > 0 {
		// Advance logical time to the limit so callers observe a
		// consistent clock even if no event landed exactly on it.
		e.advanceTo(limit)
	}
	return e.now
}

// RunFor executes events for the next d cycles.
func (e *Engine) RunFor(d Cycle) Cycle { return e.RunUntil(e.now + d) }

// RunTo is RunUntil with an unconditional clock advance: after executing
// every event with timestamp <= t, the clock lands exactly on t even if
// the queue drained first. Synchronous callers that complete work without
// scheduling events (the coherence fast path) use it so simulated time
// passes identically to the event path.
func (e *Engine) RunTo(t Cycle) Cycle {
	e.RunUntil(t)
	if e.now < t {
		e.advanceTo(t)
	}
	return e.now
}

// RunWhile executes events while cond returns true and events remain.
// It returns the final cycle.
func (e *Engine) RunWhile(cond func() bool) Cycle {
	for cond() && e.step() {
	}
	return e.now
}

// MaxEventsExceeded is returned (as a panic message prefix) by RunBounded.
const maxEventsMsg = "sim: event budget exhausted (possible livelock)"

// RunBounded executes up to maxEvents events; it panics if the budget is
// exhausted while events remain, which in this codebase always indicates a
// protocol livelock. It returns the final cycle.
func (e *Engine) RunBounded(maxEvents uint64) Cycle {
	var n uint64
	for e.step() {
		n++
		if n >= maxEvents && e.pending > 0 {
			panic(maxEventsMsg)
		}
	}
	return e.now
}

// --- overflow tier: slice-backed binary min-heap on (when, seq) ----------

func eventLess(a, b *event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (e *Engine) overflowPush(ev event) {
	h := append(e.overflow, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(&h[i], &h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.overflow = h
}

func (e *Engine) overflowPop() event {
	h := e.overflow
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // zero the vacated slot: no retained fn/handler refs
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && eventLess(&h[l], &h[small]) {
			small = l
		}
		if r < n && eventLess(&h[r], &h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	e.overflow = h
	return top
}
