//go:build !race

// Allocation-regression tests: the zero-allocation contract of the event
// engine, enforced in CI. Excluded under -race because the race detector
// instruments allocations.

package sim

import "testing"

// selfTicker reschedules itself n times: the steady-state shape of every
// simulation component's clocking loop.
type selfTicker struct {
	e *Engine
	n int
}

func (s *selfTicker) Handle(p Payload) {
	if s.n > 0 {
		s.n--
		s.e.ScheduleEvent(1, s, p)
	}
}

// TestScheduleEventZeroAlloc pins the (schedule, dispatch) cycle of the
// handler-based event API at zero allocations per event.
func TestScheduleEventZeroAlloc(t *testing.T) {
	e := NewEngine()
	tick := &selfTicker{e: e}
	// Warm the bucket free lists.
	tick.n = 2 * ringSize
	e.ScheduleEvent(1, tick, Payload{})
	e.Run()

	allocs := testing.AllocsPerRun(200, func() {
		tick.n = 64
		e.ScheduleEvent(1, tick, Payload{A: 7})
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("ScheduleEvent+dispatch allocates %.1f allocs per 65-event run, want 0", allocs)
	}
}

// shardTicker is the sharded selfTicker: it reschedules itself on its own
// shard every cycle and emits a deferred side op (the fire-and-forget
// shared-state path) per event.
type shardTicker struct {
	e *Engine
	n int
}

func (s *shardTicker) Handle(p Payload) {
	if s.n > 0 {
		s.n--
		s.e.ScheduleEvent(1, s, p)
		s.e.DeferOp(p.A, uint64(s.n), 9)
	}
}

// crossPinger ping-pongs an event between two shards at exactly the
// lookahead — the steady-state shape of crossbar traffic.
type crossPinger struct {
	e    *Engine
	dst  int
	peer Handler
	n    int
}

func (c *crossPinger) Handle(p Payload) {
	if c.n > 0 {
		c.n--
		c.e.SendRemote(c.dst, 3, c.peer, p)
	}
}

// globalPinger reschedules a global event from driver context: the
// steady-state shape of stop-the-world work (DRAM fetch issue/install).
type globalPinger struct {
	e *Engine
	n int
}

func (g *globalPinger) Handle(p Payload) {
	if g.n > 0 {
		g.n--
		g.e.ScheduleGlobalEvent(5, g, p)
	}
}

// TestShardedZeroAlloc pins steady-state sharded dispatch at 0 allocs/op:
// after warm-up, a full run's allocations are the fixed per-run driver
// setup (worker goroutines, start channels, WaitGroup) independent of
// event count — thousands of events and hundreds of epoch barriers per
// measured run would land far above the bound if any per-event or
// per-epoch path allocated.
func TestShardedZeroAlloc(t *testing.T) {
	sh := NewSharded(4, 3)
	sh.OnReplayOp(func(Cycle, uint64, uint64, uint8) {})
	ticks := make([]*shardTicker, 4)
	for i := range ticks {
		ticks[i] = &shardTicker{e: sh.Shard(i)}
	}
	ping := &crossPinger{e: sh.Shard(0), dst: 1}
	pong := &crossPinger{e: sh.Shard(1), dst: 0}
	ping.peer, pong.peer = pong, ping
	glob := &globalPinger{e: sh.Shard(2)}

	run := func(n int) {
		for i, s := range ticks {
			s.n = n
			s.e.ScheduleEvent(1, s, Payload{A: uint64(i)})
		}
		ping.n, pong.n = n/4, n/4
		sh.Shard(0).ScheduleEvent(1, ping, Payload{})
		glob.n = n / 8
		sh.Shard(2).ScheduleGlobalEvent(2, glob, Payload{})
		sh.Run()
	}
	// Warm: sweep the clock across the ring three times so every bucket,
	// merge buffer, and the global heap reach steady-state capacity.
	run(3 * ringSize)

	allocs := testing.AllocsPerRun(10, func() { run(2048) })
	if allocs > 64 {
		t.Fatalf("sharded run allocated %.0f times (want fixed per-run driver setup only)", allocs)
	}
}

// TestOverflowSteadyStateZeroAlloc pins the overflow tier: once the heap
// slice has grown, far-future scheduling and migration allocate nothing.
func TestOverflowSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine()
	r := &selfTicker{e: e}
	// Warm the overflow heap's capacity, then every ring bucket's slot
	// (migrated events land in buckets that slide forward each run).
	for i := 0; i < 64; i++ {
		e.ScheduleEvent(ringSize+Cycle(i), r, Payload{})
	}
	e.Run()
	for i := Cycle(0); i < ringSize; i++ {
		e.ScheduleEvent(i, r, Payload{})
	}
	e.Run()

	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			e.ScheduleEvent(ringSize+Cycle(i), r, Payload{})
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("overflow schedule+migrate allocates %.1f per run, want 0", allocs)
	}
}
