//go:build !race

// Allocation-regression tests: the zero-allocation contract of the event
// engine, enforced in CI. Excluded under -race because the race detector
// instruments allocations.

package sim

import "testing"

// selfTicker reschedules itself n times: the steady-state shape of every
// simulation component's clocking loop.
type selfTicker struct {
	e *Engine
	n int
}

func (s *selfTicker) Handle(p Payload) {
	if s.n > 0 {
		s.n--
		s.e.ScheduleEvent(1, s, p)
	}
}

// TestScheduleEventZeroAlloc pins the (schedule, dispatch) cycle of the
// handler-based event API at zero allocations per event.
func TestScheduleEventZeroAlloc(t *testing.T) {
	e := NewEngine()
	tick := &selfTicker{e: e}
	// Warm the bucket free lists.
	tick.n = 2 * ringSize
	e.ScheduleEvent(1, tick, Payload{})
	e.Run()

	allocs := testing.AllocsPerRun(200, func() {
		tick.n = 64
		e.ScheduleEvent(1, tick, Payload{A: 7})
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("ScheduleEvent+dispatch allocates %.1f allocs per 65-event run, want 0", allocs)
	}
}

// TestOverflowSteadyStateZeroAlloc pins the overflow tier: once the heap
// slice has grown, far-future scheduling and migration allocate nothing.
func TestOverflowSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine()
	r := &selfTicker{e: e}
	// Warm the overflow heap's capacity, then every ring bucket's slot
	// (migrated events land in buckets that slide forward each run).
	for i := 0; i < 64; i++ {
		e.ScheduleEvent(ringSize+Cycle(i), r, Payload{})
	}
	e.Run()
	for i := Cycle(0); i < ringSize; i++ {
		e.ScheduleEvent(i, r, Payload{})
	}
	e.Run()

	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			e.ScheduleEvent(ringSize+Cycle(i), r, Payload{})
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("overflow schedule+migrate allocates %.1f per run, want 0", allocs)
	}
}
