package sim

import (
	"testing"
)

// recorder collects the payloads it handles, tagged with the cycle.
type recorder struct {
	e    *Engine
	got  []Payload
	at   []Cycle
	hits int
}

func (r *recorder) Handle(p Payload) {
	r.got = append(r.got, p)
	if r.e != nil {
		r.at = append(r.at, r.e.Now())
	}
	r.hits++
}

func TestScheduleEventDeliversPayload(t *testing.T) {
	e := NewEngine()
	r := &recorder{e: e}
	want := Payload{A: 0xDEAD, B: 0xBEEF, X: -3, Y: 7, Z: 11, K: 1, F: 2, Aux: 3, Op: 4}
	e.ScheduleEvent(5, r, want)
	e.Run()
	if len(r.got) != 1 || r.got[0] != want {
		t.Fatalf("payload round trip: got %+v, want %+v", r.got, want)
	}
	if r.at[0] != 5 {
		t.Fatalf("event ran at cycle %d, want 5", r.at[0])
	}
}

func TestScheduleEventNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleEvent(nil handler) did not panic")
		}
	}()
	NewEngine().ScheduleEvent(1, nil, Payload{})
}

// ScheduleAt(Now()) from inside an event must run later in the same cycle,
// after all previously scheduled events for that cycle.
func TestScheduleAtExactlyNow(t *testing.T) {
	e := NewEngine()
	var order []int
	e.ScheduleAt(5, func() {
		order = append(order, 1)
		e.ScheduleAt(e.Now(), func() { order = append(order, 3) })
	})
	e.ScheduleAt(5, func() { order = append(order, 2) })
	end := e.Run()
	if end != 5 {
		t.Fatalf("end cycle = %d, want 5", end)
	}
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v, want [1 2 3]", order)
		}
	}
}

// Same-cycle ties exactly at the RunUntil limit must all execute, in seq
// order, including zero-delay events spawned at the limit; events one
// cycle past the limit stay queued.
func TestRunUntilSameCycleTiesAtLimit(t *testing.T) {
	e := NewEngine()
	var order []int
	const limit = Cycle(42)
	e.ScheduleAt(limit, func() {
		order = append(order, 1)
		e.Schedule(0, func() { order = append(order, 3) })
	})
	e.ScheduleAt(limit, func() { order = append(order, 2) })
	e.ScheduleAt(limit+1, func() { order = append(order, 99) })
	now := e.RunUntil(limit)
	if now != limit {
		t.Fatalf("clock = %d, want %d", now, limit)
	}
	want := []int{1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("ran %v, want %v", order, want)
		}
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want the limit+1 event", e.Pending())
	}
	e.Run()
	if order[len(order)-1] != 99 {
		t.Fatalf("limit+1 event did not run after the drain: %v", order)
	}
}

// Seq tie-break must survive the 2^32 boundary: a (scaled-down) stand-in
// for a simulation that schedules more than 2^32 events. A truncation of
// seq to 32 bits would invert same-cycle FIFO order here.
func TestSeqTieBreakAcross32BitBoundary(t *testing.T) {
	e := NewEngine()
	e.seq = (1 << 32) - 3 // as if ~2^32 events had already been scheduled
	var order []int
	for i := 0; i < 6; i++ {
		i := i
		e.Schedule(9, func() { order = append(order, i) })
	}
	e.Run()
	for i := 0; i < 6; i++ {
		if order[i] != i {
			t.Fatalf("FIFO broken across 2^32 seq boundary: order = %v", order)
		}
	}
	if e.seq <= 1<<32 {
		t.Fatalf("seq = %d did not cross the boundary", e.seq)
	}
	// Same property for the overflow heap, whose comparator also uses seq.
	e2 := NewEngine()
	e2.seq = (1 << 32) - 3
	var far []int
	for i := 0; i < 6; i++ {
		i := i
		e2.ScheduleAt(ringSize+100, func() { far = append(far, i) })
	}
	e2.Run()
	for i := 0; i < 6; i++ {
		if far[i] != i {
			t.Fatalf("overflow FIFO broken across 2^32 seq boundary: %v", far)
		}
	}
}

// Events beyond the ring horizon take the overflow tier and must still
// interleave correctly with near-future events, including events scheduled
// directly into the same cycle later (which carry larger seqs).
func TestOverflowMigrationPreservesOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	const far = Cycle(2 * ringSize) // well past the horizon at t=0
	e.ScheduleAt(far, func() { order = append(order, 1) })
	e.ScheduleAt(ringSize+10, func() {
		// far is now within the horizon; this sibling event for the same
		// cycle is younger and must run second.
		e.ScheduleAt(far, func() { order = append(order, 2) })
	})
	e.Run()
	want := []int{1, 2}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestOverflowManyFarEvents(t *testing.T) {
	e := NewEngine()
	var times []Cycle
	// Schedule far-future events in descending time order so the heap has
	// to re-sort them all.
	for i := 63; i >= 0; i-- {
		e.ScheduleAt(Cycle(ringSize+64*i+7), func() { times = append(times, e.Now()) })
	}
	e.Run()
	if len(times) != 64 {
		t.Fatalf("ran %d events, want 64", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("overflow events out of order: %v", times)
		}
	}
}

// RunUntil must migrate overflow events when it advances the clock to the
// limit with no event landing on it, so a later run sees them in the ring.
func TestRunUntilMigratesOverflow(t *testing.T) {
	e := NewEngine()
	ran := false
	e.ScheduleAt(ringSize+50, func() { ran = true })
	e.RunUntil(ringSize + 10) // advances clock past the event's horizon
	if ran {
		t.Fatal("event ran before its cycle")
	}
	if got := e.Now(); got != ringSize+10 {
		t.Fatalf("clock = %d, want %d", got, ringSize+10)
	}
	e.Run()
	if !ran {
		t.Fatal("migrated event never ran")
	}
}

// Executed slots must be zeroed: a drained engine retains no function or
// handler references in its ring buckets or overflow heap (they would pin
// otherwise-dead object graphs for the lifetime of the engine).
func TestReleasedSlotsAreZeroed(t *testing.T) {
	e := NewEngine()
	r := &recorder{}
	for i := 0; i < 300; i++ {
		e.Schedule(Cycle(i%40), func() {})
		e.ScheduleEvent(Cycle(i%40), r, Payload{A: uint64(i)})
	}
	// A few overflow events too.
	for i := 0; i < 8; i++ {
		e.ScheduleAt(Cycle(ringSize+100+i), func() {})
	}
	e.Run()
	for idx := range e.ring {
		b := &e.ring[idx]
		if len(b.evs) != 0 || b.head != 0 {
			t.Fatalf("bucket %d not reset: len=%d head=%d", idx, len(b.evs), b.head)
		}
		full := b.evs[:cap(b.evs)]
		for j := range full {
			if full[j].fn != nil || full[j].h != nil {
				t.Fatalf("bucket %d slot %d retains a reference after release", idx, j)
			}
			if full[j].when != 0 || full[j].seq != 0 || full[j].p != (Payload{}) {
				t.Fatalf("bucket %d slot %d not zeroed: %+v", idx, j, full[j])
			}
		}
	}
	full := e.overflow[:cap(e.overflow)]
	for j := range full {
		if full[j].fn != nil || full[j].h != nil {
			t.Fatalf("overflow slot %d retains a reference after release", j)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after drain", e.Pending())
	}
}

// The occupancy bitmap must agree with the buckets after arbitrary
// schedule/run interleavings.
func TestOccupancyBitmapConsistency(t *testing.T) {
	e := NewEngine()
	rng := NewRNG(99)
	for round := 0; round < 50; round++ {
		n := int(rng.Uint64n(20)) + 1
		for i := 0; i < n; i++ {
			e.Schedule(Cycle(rng.Uint64n(ringSize)), func() {})
		}
		e.RunFor(Cycle(rng.Uint64n(200)))
	}
	e.Run()
	for w, word := range e.occ {
		if word != 0 {
			t.Fatalf("occupancy word %d = %#x after drain", w, word)
		}
	}
}
