// Conservative parallel discrete-event simulation over the calendar-queue
// engine.
//
// A Sharded engine is N ordinary Engines — one per shard — driven in
// lookahead-sized epochs. Model components are partitioned across shards
// (directory banks and core clusters in the coherence model) and interact
// across shards only through the crossbar, whose minimum hop latency L is
// the lookahead: an event executing at cycle t can influence another shard
// no earlier than t+L. Each epoch the driver computes the globally
// earliest pending event time T0 and lets every shard drain its local
// queue concurrently up to the exclusive horizon (T0+L, key 0); events
// bound for other shards are buffered and merged at the barrier.
//
// The merge reproduces the sequential engine's (cycle, seq) tie-break
// exactly. The sequential seq is assigned in creation order, and creation
// order is execution order of the creating events — so the barrier
// reconstructs it: each executed event that created events is logged with
// the contiguous range it created; a K-way merge of the per-shard logs by
// (cycle, key) replays the epoch's execution order and assigns the next
// exact keys to each record's creations in call order. Events created and
// consumed within one epoch run under per-shard provisional keys (high
// bit set, per-shard birth order), which order correctly against every
// key they can meet mid-epoch: provisional > exact matches "created after
// everything already queued", and same-shard provisional order is birth
// order. No provisional key survives a barrier, because local creations
// at or beyond the epoch limit are buffered like remote ones.
//
// Work that must see globally ordered shared state — a DRAM fetch issue,
// an LLC install that may recall lines from any L1 — is scheduled as a
// global event: it becomes the epoch limit when it is the earliest
// pending work and executes on the driver, alone, with every shard
// stopped exactly at its (cycle, key). Fire-and-forget shared-state
// operations (DRAM writeback bandwidth accounting) are recorded as side
// ops attached to the execution log and replayed by the driver in merge
// order, so order-dependent models observe the sequential call sequence.
//
// The result is byte-identical to running the same model on one Engine;
// the equivalence suites in sharded_test.go and internal/coherence assert
// exactly that, and DESIGN.md §5 sketches the proof.
package sim

import (
	"fmt"
	"strings"
	"sync"
)

// provisionalBase marks per-shard provisional merge keys: events created
// during an epoch and inserted live carry provisionalBase+birthIndex until
// the barrier assigns exact keys. Exact keys are a shared counter far below
// 1<<63, so provisional keys compare greater than every exact key — which
// is also the correct sequential order (they were created last).
const provisionalBase = uint64(1) << 63

// LookaheadViolation is the typed panic raised when a shard schedules
// cross-shard (or global) work closer than the lookahead allows. It always
// indicates a model bug: some component bypassed the crossbar's minimum
// hop latency.
type LookaheadViolation struct {
	Shard     int   // scheduling shard
	Dst       int   // destination shard, or -1 for a global event
	When      Cycle // target cycle
	Delay     Cycle // offending delay
	Lookahead Cycle
}

func (v *LookaheadViolation) Error() string {
	dst := fmt.Sprintf("shard %d", v.Dst)
	if v.Dst < 0 {
		dst = "global barrier"
	}
	return fmt.Sprintf("sim: lookahead violation: shard %d -> %s at cycle %d (delay %d < lookahead %d)",
		v.Shard, dst, v.When, v.Delay, v.Lookahead)
}

// born-record kinds: what became of an event created during an epoch.
const (
	bornLive     uint8 = iota // inserted live in the creating shard under a provisional key
	bornDeferred              // buffered for barrier insertion into dst (cross-shard or at/past the limit)
	bornGlobal                // buffered for the global queue
)

// bornRec records one event created during an epoch, in creation order.
// The barrier merge assigns trueKey; deferred kinds carry the event itself.
type bornRec struct {
	trueKey uint64
	kind    uint8
	dst     int32
	ev      event
}

// execRec logs one executed event that created events or emitted side ops:
// the merge needs exactly those to replay creation order.
type execRec struct {
	when               Cycle
	rawKey             uint64
	bornStart, bornEnd int32
	sideStart, sideEnd int32
}

// sideOp is a deferred order-dependent operation against shared state
// (DeferOp); the driver replays it in merge order via the replay hook.
type sideOp struct {
	when Cycle
	a, b uint64
	op   uint8
}

// gevent is a queued global event.
type gevent struct {
	when Cycle
	key  uint64
	fn   func()
	h    Handler
	p    Payload
}

func gLess(a, b *gevent) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.key < b.key
}

// shardState is the per-shard sharding extension of an Engine. Epoch
// buffers retain capacity across epochs, so steady-state execution stays
// allocation-free.
type shardState struct {
	sh *Sharded
	id int

	// Epoch parameters, published by the driver before workers wake.
	inEpoch   bool
	limitWhen Cycle
	limitKey  uint64

	born    []bornRec
	execLog []execRec
	sideOps []sideOp

	// Worker-side failure capture, consumed by the driver at the barrier.
	panicked   bool
	panicVal   any
	tripInfo   TripInfo
	tripped    bool
	cancelInfo CancelInfo
	cancelled  bool
}

// shardTripMark is the sentinel panic a shard watchdog raises so the
// worker's recover can hand the trip to the driver.
type shardTripMark struct{}

// Sharded drives N shard engines in conservative lookahead epochs. All
// methods are driver-side and single-threaded; shard engines may only be
// touched from their own epoch worker while a run is in progress.
type Sharded struct {
	shards    []*Engine
	lookahead Cycle

	key        uint64 // exact merge-key counter (the sequential engine's seq)
	globalQ    []gevent
	barriers   uint64
	globalsRun uint64 // globals executed on the driver (not in any shard's count)
	running    bool

	replayOp func(now Cycle, a, b uint64, op uint8)

	wdCfg           WatchdogConfig
	wdTrip          func(TripInfo)
	progressGlobals uint64 // globalsRun at the last progress mark (stepping accounting)

	cxl     *Cancel          // armed cancellation token (see cancel.go)
	cxlTrip func(CancelInfo) // combined cancel trip
}

// NewSharded builds a sharded engine with the given shard count and
// lookahead. The lookahead must be the minimum cross-shard interaction
// latency of the model (the crossbar's base hop latency); zero lookahead
// admits no parallelism and is rejected.
func NewSharded(shards int, lookahead Cycle) *Sharded {
	if shards < 1 || shards > 64 {
		panic(fmt.Sprintf("sim: NewSharded with %d shards (want 1..64)", shards))
	}
	if lookahead == 0 {
		panic("sim: NewSharded with zero lookahead")
	}
	sh := &Sharded{lookahead: lookahead}
	for i := 0; i < shards; i++ {
		e := NewEngine()
		e.ss = &shardState{sh: sh, id: i}
		sh.shards = append(sh.shards, e)
	}
	return sh
}

// Shard returns shard i's engine. Components are wired to their home
// shard's engine at model build time and use the ordinary Engine API.
func (sh *Sharded) Shard(i int) *Engine { return sh.shards[i] }

// NumShards returns the shard count.
func (sh *Sharded) NumShards() int { return len(sh.shards) }

// Lookahead returns the epoch lookahead in cycles.
func (sh *Sharded) Lookahead() Cycle { return sh.lookahead }

// Barriers returns the number of epoch barriers executed so far.
func (sh *Sharded) Barriers() uint64 { return sh.barriers }

// Now returns the maximum shard clock. After Run it is single-valued
// across shards, like the sequential engine's final cycle.
func (sh *Sharded) Now() Cycle {
	var max Cycle
	for _, e := range sh.shards {
		if e.now > max {
			max = e.now
		}
	}
	return max
}

// Pending reports queued events across all shards plus queued globals.
func (sh *Sharded) Pending() int {
	n := len(sh.globalQ)
	for _, e := range sh.shards {
		n += e.pending
	}
	return n
}

// deferredPending counts events parked in cross-shard merge buffers,
// awaiting barrier insertion. Zero outside epochs.
func (sh *Sharded) deferredPending() int {
	n := 0
	for _, e := range sh.shards {
		for i := range e.ss.born {
			if e.ss.born[i].kind != bornLive {
				n++
			}
		}
	}
	return n
}

// PendingAll is Pending plus events parked in cross-shard merge buffers —
// the full population a dump renders.
func (sh *Sharded) PendingAll() int { return sh.Pending() + sh.deferredPending() }

// Executed sums executed events across shards, plus global events run on
// the driver — the same population the sequential engine counts.
func (sh *Sharded) Executed() uint64 {
	n := sh.globalsRun
	for _, e := range sh.shards {
		n += e.executed
	}
	return n
}

// ExecutedPerShard returns per-shard executed-event counts (the [shards]
// footer's payload).
func (sh *Sharded) ExecutedPerShard() []uint64 {
	out := make([]uint64, len(sh.shards))
	for i, e := range sh.shards {
		out[i] = e.executed
	}
	return out
}

// GlobalsRun returns the count of global events executed on the driver
// (scheduled via ScheduleGlobalEvent; not in any shard's count).
func (sh *Sharded) GlobalsRun() uint64 { return sh.globalsRun }

// OnReplayOp installs the side-op replayer invoked (in merge order) for
// every Engine.DeferOp emitted during an epoch.
func (sh *Sharded) OnReplayOp(fn func(now Cycle, a, b uint64, op uint8)) { sh.replayOp = fn }

// ArmWatchdog arms a liveness watchdog on every shard plus a barrier-time
// global quiescence check. Each shard gets the full per-shard budget, so a
// single wedged shard trips even while the others idle at the barrier; the
// global check additionally trips when the shards collectively exceed the
// event budget with no shard marking progress. The combined trip carries
// every shard's pending-event dump, including cross-shard merge buffers.
func (sh *Sharded) ArmWatchdog(cfg WatchdogConfig, trip func(TripInfo)) {
	if !cfg.Enabled() {
		sh.wdCfg, sh.wdTrip = WatchdogConfig{}, nil
		for _, e := range sh.shards {
			e.DisarmWatchdog()
		}
		return
	}
	if trip == nil {
		panic("sim: ArmWatchdog with nil trip callback")
	}
	sh.wdCfg, sh.wdTrip = cfg, trip
	sh.progressGlobals = sh.globalsRun
	for _, e := range sh.shards {
		ss := e.ss
		e.ArmWatchdog(cfg, func(ti TripInfo) {
			if ss.inEpoch {
				ss.tripInfo = ti
				ss.tripped = true
				panic(shardTripMark{})
			}
			// Driver context (sequential stepping): no worker recover is
			// in place, so fire the combined trip directly.
			ss.sh.fireTrip(ti)
		})
	}
}

// Run executes events until every shard queue and the global queue drain,
// then settles all shard clocks on the global maximum and returns it.
func (sh *Sharded) Run() Cycle { return sh.runLoop(nil) }

// RunWhile executes epochs while cond returns true and events remain. The
// condition is evaluated at epoch barriers, not per event — coarser than
// the sequential engine, so a run may execute past the cycle where cond
// first turned false. Callers needing an exact stop cycle must derive it
// from model state (see cpu.Run), not from the engine clock.
func (sh *Sharded) RunWhile(cond func() bool) Cycle { return sh.runLoop(cond) }

// worker is one shard's epoch loop. The recover sits outside the epoch
// loop (one defer per worker lifetime, not per epoch) so steady-state
// epochs allocate nothing; after capturing a panic for the driver the
// worker re-enters its loop, since a non-fatal trip lets the run continue.
func (sh *Sharded) worker(e *Engine, start chan struct{}, wg *sync.WaitGroup) {
	defer func() {
		if r := recover(); r != nil {
			e.ss.panicVal = r
			e.ss.panicked = true
			wg.Done()
			sh.worker(e, start, wg)
		}
	}()
	for range start {
		e.runEpoch()
		wg.Done()
	}
}

func (sh *Sharded) runLoop(cond func() bool) Cycle {
	if sh.running {
		panic("sim: reentrant Sharded run")
	}
	sh.running = true
	defer func() { sh.running = false }()

	n := len(sh.shards)
	starts := make([]chan struct{}, n)
	var wg sync.WaitGroup
	for i, e := range sh.shards {
		starts[i] = make(chan struct{}, 1)
		go sh.worker(e, starts[i], &wg)
	}
	defer func() {
		for _, c := range starts {
			close(c)
		}
	}()

	for {
		if cond != nil && !cond() {
			break
		}
		var t0 Cycle
		haveT0 := false
		for _, e := range sh.shards {
			if t, ok := e.nextTime(); ok && (!haveT0 || t < t0) {
				t0, haveT0 = t, true
			}
		}
		haveG := len(sh.globalQ) > 0
		if !haveT0 && !haveG {
			break
		}

		var limW Cycle
		var limK uint64
		runGlobal := false
		if haveT0 {
			limW, limK = t0+sh.lookahead, 0
		}
		if haveG {
			g := &sh.globalQ[0]
			if !haveT0 || g.when < limW {
				limW, limK = g.when, g.key
				runGlobal = true
			}
		}

		if haveT0 {
			var wdMark [64]uint64
			for i, e := range sh.shards {
				ss := e.ss
				ss.limitWhen, ss.limitKey = limW, limK
				ss.inEpoch = true
				if e.wd != nil && i < len(wdMark) {
					wdMark[i] = e.wd.lastEvents
				}
			}
			wg.Add(n)
			for _, c := range starts {
				c <- struct{}{}
			}
			wg.Wait()
			for _, e := range sh.shards {
				e.ss.inEpoch = false
			}
			sh.checkPanics()
			sh.mergeAndCommit()
			sh.checkGlobalWatchdog(wdMark[:min(n, len(wdMark))])
			sh.broadcastProgress(wdMark[:min(n, len(wdMark))])
		}

		lim := gevent{when: limW, key: limK}
		if runGlobal && len(sh.globalQ) > 0 && !gLess(&lim, &sh.globalQ[0]) {
			g := sh.gPop()
			for _, e := range sh.shards {
				e.advanceTo(g.when)
			}
			sh.globalsRun++
			if g.fn != nil {
				g.fn()
			} else {
				g.h.Handle(g.p)
			}
		}
	}

	var max Cycle
	for _, e := range sh.shards {
		if e.now > max {
			max = e.now
		}
	}
	for _, e := range sh.shards {
		e.advanceTo(max)
	}
	return max
}

// runEpoch drains this shard's queue up to the exclusive (limitWhen,
// limitKey) bound, logging executed events that created events or emitted
// side ops. Runs on the shard's worker goroutine.
func (e *Engine) runEpoch() {
	ss := e.ss
	for e.pending > 0 {
		t, ok := e.nextTime()
		if !ok || t > ss.limitWhen {
			break
		}
		e.advanceTo(t)
		idx := uint32(t) & ringMask
		b := &e.ring[idx]
		ev := b.evs[b.head]
		// Provisional keys compare greater than any exact limit key, so
		// same-cycle events born this epoch correctly defer to a global
		// limit (their exact keys would be assigned after it).
		if t == ss.limitWhen && ev.seq >= ss.limitKey {
			break
		}
		b.evs[b.head] = event{}
		b.head++
		if b.head == len(b.evs) {
			b.evs = b.evs[:0]
			b.head = 0
			e.occ[idx>>6] &^= 1 << (idx & 63)
		}
		e.pending--
		e.executed++
		bornStart, sideStart := len(ss.born), len(ss.sideOps)
		if ev.fn != nil {
			ev.fn()
		} else {
			ev.h.Handle(ev.p)
		}
		if len(ss.born) > bornStart || len(ss.sideOps) > sideStart {
			ss.execLog = append(ss.execLog, execRec{
				when: t, rawKey: ev.seq,
				bornStart: int32(bornStart), bornEnd: int32(len(ss.born)),
				sideStart: int32(sideStart), sideEnd: int32(len(ss.sideOps)),
			})
		}
		if e.wd != nil {
			e.checkWatchdog()
		}
	}
}

// mergeAndCommit is the epoch barrier: replay the epoch's global execution
// order from the per-shard logs, assign exact keys to every event created
// during the epoch in sequential creation order, replay deferred side ops,
// then insert buffered events into their destination shards.
func (sh *Sharded) mergeAndCommit() {
	var cur [64]int
	heads := cur[:len(sh.shards)]
	for {
		best := -1
		var bw Cycle
		var bk uint64
		for s, e := range sh.shards {
			ss := e.ss
			i := heads[s]
			if i >= len(ss.execLog) {
				continue
			}
			rec := &ss.execLog[i]
			k := rec.rawKey
			if k >= provisionalBase {
				// The creator of a provisionally keyed event is earlier in
				// the same shard's log, so its range is already assigned.
				k = ss.born[k-provisionalBase].trueKey
			}
			if best < 0 || rec.when < bw || (rec.when == bw && k < bk) {
				best, bw, bk = s, rec.when, k
			}
		}
		if best < 0 {
			break
		}
		ss := sh.shards[best].ss
		rec := &ss.execLog[heads[best]]
		heads[best]++
		for i := rec.bornStart; i < rec.bornEnd; i++ {
			sh.key++
			ss.born[i].trueKey = sh.key
		}
		if fn := sh.replayOp; fn != nil {
			for i := rec.sideStart; i < rec.sideEnd; i++ {
				op := &ss.sideOps[i]
				fn(op.when, op.a, op.b, op.op)
			}
		}
	}
	for _, e := range sh.shards {
		ss := e.ss
		for i := range ss.born {
			br := &ss.born[i]
			switch br.kind {
			case bornDeferred:
				ev := br.ev
				ev.seq = br.trueKey
				dst := sh.shards[br.dst]
				dst.pending++
				dst.insert(ev)
			case bornGlobal:
				sh.gPush(gevent{when: br.ev.when, key: br.trueKey, fn: br.ev.fn, h: br.ev.h, p: br.ev.p})
			}
			br.ev = event{} // no retained fn/handler refs
		}
		ss.born = ss.born[:0]
		ss.execLog = ss.execLog[:0]
		ss.sideOps = ss.sideOps[:0]
	}
	sh.barriers++
}

// checkPanics surfaces worker failures on the driver goroutine: watchdog
// trips become one combined trip with every shard's dump, cancellation
// marks become one combined cancel trip; any other panic (protocol
// violations, lookahead violations) re-panics verbatim, lowest shard
// first for determinism. When shards raise both in one epoch the cancel
// wins — the caller that requested the abort is going away, so the
// livelock diagnostic has no reader.
func (sh *Sharded) checkPanics() {
	tripped, cancelled := -1, -1
	for i, e := range sh.shards {
		ss := e.ss
		if !ss.panicked {
			continue
		}
		switch ss.panicVal.(type) {
		case shardTripMark:
			ss.panicked, ss.panicVal = false, nil
			if tripped < 0 {
				tripped = i
			}
		case shardCancelMark:
			ss.panicked, ss.panicVal = false, nil
			if cancelled < 0 {
				cancelled = i
			}
		default:
			v := ss.panicVal
			ss.panicked, ss.panicVal = false, nil
			panic(v)
		}
	}
	if cancelled >= 0 {
		sh.fireCancelAll(sh.shards[cancelled].ss.cancelInfo)
		return
	}
	if tripped >= 0 {
		sh.fireTrip(sh.shards[tripped].ss.tripInfo)
	}
}

// checkGlobalWatchdog trips when no shard marked progress across the epoch
// and the summed per-shard event counts since their last marks exceed the
// budget — the collective-livelock case no single shard's budget catches.
func (sh *Sharded) checkGlobalWatchdog(marks []uint64) {
	if !sh.wdCfg.Enabled() || sh.wdCfg.MaxEvents == 0 {
		return
	}
	var total uint64
	worst := -1
	var worstEvents uint64
	for i, e := range sh.shards {
		wd := e.wd
		if wd == nil {
			return // disarmed (a trip already fired)
		}
		if i < len(marks) && wd.lastEvents != marks[i] {
			return // this shard progressed during the epoch
		}
		since := e.executed - wd.lastEvents
		total += since
		if worst < 0 || since > worstEvents {
			worst, worstEvents = i, since
		}
	}
	if total < sh.wdCfg.MaxEvents {
		return
	}
	e := sh.shards[worst]
	sh.fireTrip(TripInfo{
		Now:                 e.now,
		LastProgress:        e.wd.lastCycle,
		EventsSinceProgress: total,
		CyclesSinceProgress: e.now - e.wd.lastCycle,
	})
}

// broadcastProgress resets every shard watchdog's budget at the barrier
// when any shard marked progress during the epoch, mirroring the
// sequential engine's single watchdog, where any core's mark resets the
// one shared budget. Without it a shard whose components have gone quiet
// — a finished core's caches absorbing invalidations — would burn cycles
// against its own budget even though the run as a whole is healthy.
// Epochs are lookahead-sized, so barrier-granular broadcast is
// indistinguishable from the sequential per-event reset at watchdog
// scale; and a shard wedged *inside* its epoch never reaches a barrier,
// so its own per-shard budget still trips it.
func (sh *Sharded) broadcastProgress(marks []uint64) {
	progressed := false
	for i, e := range sh.shards {
		if wd := e.wd; wd != nil && i < len(marks) && wd.lastEvents != marks[i] {
			progressed = true
			break
		}
	}
	if !progressed {
		return
	}
	for _, e := range sh.shards {
		if wd := e.wd; wd != nil {
			wd.lastCycle = e.now
			wd.lastEvents = e.executed
		}
	}
}

// fireTrip disarms every shard and invokes the combined trip callback with
// all shards' pending events (live queues, merge buffers, global queue).
func (sh *Sharded) fireTrip(src TripInfo) {
	for _, e := range sh.shards {
		// DisarmWatchdog, not a bare nil store: an armed cancellation
		// token must survive the budget trip on a budget-less frame.
		e.DisarmWatchdog()
	}
	trip := sh.wdTrip
	sh.wdCfg, sh.wdTrip = WatchdogConfig{}, nil
	if trip == nil {
		return
	}
	src.Now = sh.Now()
	src.Pending = sh.PendingAll()
	src.PendingDump = sh.renderPending()
	trip(src)
}

// ForEachGlobalPending visits queued global events in execution order —
// (when, key), the order the driver would run them. Complements the
// per-shard Engine.ForEachPending for dumps and crash bundles.
func (sh *Sharded) ForEachGlobalPending(fn func(when Cycle, h Handler, p Payload, isClosure bool)) {
	if len(sh.globalQ) == 0 {
		return
	}
	gs := append([]gevent(nil), sh.globalQ...)
	for i := 1; i < len(gs); i++ {
		for j := i; j > 0 && gLess(&gs[j], &gs[j-1]); j-- {
			gs[j], gs[j-1] = gs[j-1], gs[j]
		}
	}
	for i := range gs {
		fn(gs[i].when, gs[i].h, gs[i].p, gs[i].fn != nil)
	}
}

// pendingEvent is one entry of the merged pending view: an event from a
// shard queue, a merge buffer, or the global queue, under its merge key.
type pendingEvent struct {
	when    Cycle
	key     uint64
	shard   int32 // tie-break for colliding provisional keys; -1 = global
	closure bool
	h       Handler
	p       Payload
}

// ForEachPendingMerged visits every pending event across all shard
// queues, the cross-shard merge buffers, and the global queue in global
// execution order — (cycle, key), the order stepping would execute them.
// Outside epochs every key is exact, so the visit order is identical to
// the order one sequential Engine's ForEachPending would report the same
// events: dumps rendered from this view are byte-identical at every shard
// count. The engine must not be mutated during iteration.
func (sh *Sharded) ForEachPendingMerged(fn func(when Cycle, h Handler, p Payload, isClosure bool)) {
	evs := make([]pendingEvent, 0, sh.PendingAll())
	for s, e := range sh.shards {
		s32 := int32(s)
		e.ForEachPendingAbs(func(when Cycle, key uint64, h Handler, p Payload, isClosure bool) {
			evs = append(evs, pendingEvent{when: when, key: key, shard: s32, closure: isClosure, h: h, p: p})
		})
	}
	for i := range sh.globalQ {
		g := &sh.globalQ[i]
		evs = append(evs, pendingEvent{when: g.when, key: g.key, shard: -1, closure: g.fn != nil, h: g.h, p: g.p})
	}
	less := func(a, b *pendingEvent) bool {
		if a.when != b.when {
			return a.when < b.when
		}
		if a.key != b.key {
			return a.key < b.key
		}
		return a.shard < b.shard
	}
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && less(&evs[j], &evs[j-1]); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
	for i := range evs {
		ev := &evs[i]
		fn(ev.when, ev.h, ev.p, ev.closure)
	}
}

// renderPending formats the merged pending view — shard queues, merge
// buffers, global queue — in global execution order, byte-compatible with
// the sequential Engine.renderPending so a trip diagnostic recorded on a
// sharded machine matches its sequential replay exactly.
func (sh *Sharded) renderPending() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pending events (%d), execution order:\n", sh.PendingAll())
	now := sh.Now()
	sh.ForEachPendingMerged(func(when Cycle, h Handler, p Payload, isClosure bool) {
		rel := when - now
		if isClosure {
			fmt.Fprintf(&sb, "  +%-6d closure\n", rel)
			return
		}
		fmt.Fprintf(&sb, "  +%-6d %-28T op=%d A=%#x B=%#x X=%d Y=%d Z=%d K=%d F=%d Aux=%d\n",
			rel, h, p.Op, p.A, p.B, p.X, p.Y, p.Z, p.K, p.F, p.Aux)
	})
	return sb.String()
}

// --- global-event min-heap on (when, key) --------------------------------

func (sh *Sharded) gPush(g gevent) {
	h := append(sh.globalQ, g)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !gLess(&h[i], &h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	sh.globalQ = h
}

func (sh *Sharded) gPop() gevent {
	h := sh.globalQ
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = gevent{}
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && gLess(&h[l], &h[small]) {
			small = l
		}
		if r < n && gLess(&h[r], &h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	sh.globalQ = h
	return top
}

// --- Engine-side sharding API --------------------------------------------

// nextKey hands out the next exact merge key. Driver-context only.
func (sh *Sharded) nextKey() uint64 {
	sh.key++
	return sh.key
}

// schedule is the sharded replacement for the sequential key-assign+insert
// path. Driver context (setup, barriers, global events) assigns exact keys
// immediately; mid-epoch, events that will execute before the limit are
// inserted live under provisional keys and everything else is buffered for
// the barrier.
func (ss *shardState) schedule(e *Engine, ev event) {
	e.scheduled++
	if !ss.inEpoch {
		ev.seq = ss.sh.nextKey()
		e.pending++
		e.insert(ev)
		return
	}
	if ev.when < ss.limitWhen {
		ev.seq = provisionalBase + uint64(len(ss.born))
		ss.born = append(ss.born, bornRec{kind: bornLive})
		e.pending++
		e.insert(ev)
		return
	}
	ss.born = append(ss.born, bornRec{kind: bornDeferred, dst: int32(ss.id), ev: ev})
}

// ShardID returns this engine's shard index (0 when unsharded).
func (e *Engine) ShardID() int {
	if e.ss != nil {
		return e.ss.id
	}
	return 0
}

// Sharded returns the owning sharded engine, or nil for a plain engine.
func (e *Engine) Sharded() *Sharded {
	if e.ss != nil {
		return e.ss.sh
	}
	return nil
}

// SendRemote schedules a (handler, payload) event on shard dst, delay
// cycles from this shard's now. On a plain engine, or when dst is the
// scheduling shard, it is ScheduleEvent. Cross-shard sends must respect
// the lookahead — a shorter delay panics with a *LookaheadViolation,
// because the receiving shard may already have executed past the target
// cycle.
func (e *Engine) SendRemote(dst int, delay Cycle, h Handler, p Payload) {
	if h == nil {
		panic("sim: SendRemote called with nil handler")
	}
	ss := e.ss
	if ss == nil || dst == ss.id {
		e.ScheduleEvent(delay, h, p)
		return
	}
	e.scheduled++
	ev := event{when: e.now + delay, h: h, p: p}
	if !ss.inEpoch {
		ev.seq = ss.sh.nextKey()
		de := ss.sh.shards[dst]
		if ev.when < de.now {
			panic(fmt.Sprintf("sim: SendRemote to shard %d at cycle %d in the past (now=%d)", dst, ev.when, de.now))
		}
		de.pending++
		de.insert(ev)
		return
	}
	if delay < ss.sh.lookahead {
		panic(&LookaheadViolation{Shard: ss.id, Dst: dst, When: ev.when, Delay: delay, Lookahead: ss.sh.lookahead})
	}
	ss.born = append(ss.born, bornRec{kind: bornDeferred, dst: int32(dst), ev: ev})
}

// ScheduleGlobalEvent schedules a stop-the-world event: it executes on the
// driver with every shard stopped exactly at its (cycle, key), so its
// handler may touch any shard's state. On a plain engine it is
// ScheduleEvent. Mid-epoch scheduling must respect the lookahead, since
// other shards may already have executed past a nearer cycle.
func (e *Engine) ScheduleGlobalEvent(delay Cycle, h Handler, p Payload) {
	if h == nil {
		panic("sim: ScheduleGlobalEvent called with nil handler")
	}
	ss := e.ss
	if ss == nil {
		e.ScheduleEvent(delay, h, p)
		return
	}
	e.scheduled++
	when := e.now + delay
	if !ss.inEpoch {
		ss.sh.gPush(gevent{when: when, key: ss.sh.nextKey(), h: h, p: p})
		return
	}
	if delay < ss.sh.lookahead {
		panic(&LookaheadViolation{Shard: ss.id, Dst: -1, When: when, Delay: delay, Lookahead: ss.sh.lookahead})
	}
	ss.born = append(ss.born, bornRec{kind: bornGlobal, ev: event{when: when, h: h, p: p}})
}

// DeferOp records an order-dependent fire-and-forget operation against
// shared state (e.g. a DRAM writeback's bandwidth accounting). Mid-epoch
// it is buffered and replayed by the driver in merge order — the exact
// sequence the sequential engine would have produced; in driver context it
// replays immediately. Only valid on shard engines with a replayer
// installed (OnReplayOp).
func (e *Engine) DeferOp(a, b uint64, op uint8) {
	ss := e.ss
	if ss == nil {
		panic("sim: DeferOp on an unsharded engine")
	}
	if !ss.inEpoch {
		ss.sh.replayOp(e.now, a, b, op)
		return
	}
	ss.sideOps = append(ss.sideOps, sideOp{when: e.now, a: a, b: b, op: op})
}
