package sim

import (
	"fmt"
	"strings"
)

// WatchdogConfig bounds how long the engine may run without anyone
// calling Progress. Zero fields disable that bound; the zero value
// disables the watchdog entirely. Both limits are deliberately generous
// defaults for callers to tighten: a wedged protocol executes thousands
// of events per retired op, so even a 10x-conservative budget trips
// quickly relative to a full run.
type WatchdogConfig struct {
	// MaxEvents is the number of events the engine may execute with no
	// progress mark before the watchdog trips.
	MaxEvents uint64 `json:"max_events,omitempty"`
	// MaxCycles is the number of simulated cycles that may elapse with no
	// progress mark before the watchdog trips.
	MaxCycles Cycle `json:"max_cycles,omitempty"`
}

// Enabled reports whether the config bounds anything.
func (c WatchdogConfig) Enabled() bool { return c.MaxEvents > 0 || c.MaxCycles > 0 }

// TripInfo is the watchdog's structured diagnostic: where the run stalled
// and the complete pending-event queue at the moment of the trip. Higher
// layers append their own state (MSHRs, directory transactions) on top.
type TripInfo struct {
	Now                 Cycle
	LastProgress        Cycle // engine time of the last Progress call
	EventsSinceProgress uint64
	CyclesSinceProgress Cycle
	Pending             int
	// PendingDump renders every pending event in execution order, one per
	// line: relative cycle, handler type, payload. Closure events carry no
	// inspectable payload and render as "closure".
	PendingDump string
}

// watchdog is the armed detector. lastCycle/lastEvents snapshot the
// engine counters at the most recent progress mark. The frame also
// carries the armed cancellation token (see cancel.go), so the
// per-event check site stays a single nil test whether zero, one, or
// both mechanisms are armed.
type watchdog struct {
	cfg        WatchdogConfig
	trip       func(TripInfo)
	lastCycle  Cycle
	lastEvents uint64

	cancel     *Cancel
	cancelTrip func(CancelInfo)
}

// ArmWatchdog installs a liveness watchdog: if the engine executes
// cfg.MaxEvents events or advances cfg.MaxCycles cycles without a
// Progress call, trip runs with a diagnostic. The watchdog disarms itself
// before calling trip, so a trip callback that does not panic leaves the
// engine runnable (and re-armable). Arming with a disabled config disarms
// any existing watchdog.
func (e *Engine) ArmWatchdog(cfg WatchdogConfig, trip func(TripInfo)) {
	if !cfg.Enabled() {
		e.DisarmWatchdog()
		return
	}
	if trip == nil {
		panic("sim: ArmWatchdog with nil trip callback")
	}
	next := &watchdog{cfg: cfg, trip: trip, lastCycle: e.now, lastEvents: e.executed}
	if old := e.wd; old != nil {
		// An armed cancellation token rides the frame; re-arming the
		// watchdog must not drop it.
		next.cancel, next.cancelTrip = old.cancel, old.cancelTrip
	}
	e.wd = next
}

// DisarmWatchdog removes the watchdog, if any. An armed cancellation
// token survives on a budget-less frame.
func (e *Engine) DisarmWatchdog() {
	if wd := e.wd; wd != nil && wd.cancel != nil {
		wd.cfg, wd.trip = WatchdogConfig{}, nil
		return
	}
	e.wd = nil
}

// Progress marks forward progress — a core retired an operation, so the
// run is not wedged. It resets the watchdog's event and cycle budgets.
// With no watchdog armed it is a single nil check, cheap enough for the
// hottest completion paths.
func (e *Engine) Progress() {
	if wd := e.wd; wd != nil {
		wd.lastCycle = e.now
		wd.lastEvents = e.executed
	}
	if ss := e.ss; ss != nil && !ss.inEpoch {
		// Driver context on a sharded engine (sequential stepping): progress
		// is a global property, so reset every shard's budget — the exact
		// semantics of the sequential engine's single watchdog. Mid-epoch
		// the mark stays shard-local (workers must not touch peers) and the
		// barrier broadcast propagates it.
		ss.sh.progressGlobals = ss.sh.globalsRun
		for _, pe := range ss.sh.shards {
			if wd := pe.wd; wd != nil {
				wd.lastCycle = pe.now
				wd.lastEvents = pe.executed
			}
		}
	}
}

// checkWatchdog runs after each executed event while a watchdog frame is
// armed: first the cancellation flag (one atomic load), then the budget.
func (e *Engine) checkWatchdog() {
	wd := e.wd
	if wd.cancel != nil && wd.cancel.Requested() {
		e.fireCancel(wd)
		return
	}
	events := e.executed - wd.lastEvents
	cycles := e.now - wd.lastCycle
	if ss := e.ss; ss != nil && !ss.inEpoch {
		// Sequential stepping: the budget is global, exactly as on one
		// Engine. Clocks are lockstep and Progress resets every shard, so
		// summing per-shard events since their marks (plus driver-run
		// globals) reproduces the sequential events-since-progress count —
		// the trip fires at the identical event.
		events = ss.sh.globalsRun - ss.sh.progressGlobals
		for _, pe := range ss.sh.shards {
			if pwd := pe.wd; pwd != nil {
				events += pe.executed - pwd.lastEvents
			}
		}
	}
	if (wd.cfg.MaxEvents == 0 || events < wd.cfg.MaxEvents) &&
		(wd.cfg.MaxCycles == 0 || cycles < wd.cfg.MaxCycles) {
		return
	}
	// Disarm before the callback: a non-panicking trip must not re-fire.
	// An armed cancellation token stays live on a budget-less frame.
	e.wd = nil
	if wd.cancel != nil {
		e.wd = &watchdog{lastCycle: e.now, lastEvents: e.executed,
			cancel: wd.cancel, cancelTrip: wd.cancelTrip}
	}
	wd.trip(TripInfo{
		Now:                 e.now,
		LastProgress:        wd.lastCycle,
		EventsSinceProgress: events,
		CyclesSinceProgress: cycles,
		Pending:             e.pending,
		PendingDump:         e.renderPending(),
	})
}

// renderPending formats the pending-event queue for a trip diagnostic.
// Failure-path only; allocation is fine here.
func (e *Engine) renderPending() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pending events (%d), execution order:\n", e.pending)
	e.ForEachPending(func(rel Cycle, h Handler, p Payload, isClosure bool) {
		if isClosure {
			fmt.Fprintf(&sb, "  +%-6d closure\n", rel)
			return
		}
		fmt.Fprintf(&sb, "  +%-6d %-28T op=%d A=%#x B=%#x X=%d Y=%d Z=%d K=%d F=%d Aux=%d\n",
			rel, h, p.Op, p.A, p.B, p.X, p.Y, p.Z, p.K, p.F, p.Aux)
	})
	return sb.String()
}
